"""Packet-level call-setup signaling (Section 1's protocol, message by message).

The paper describes its set-up mechanics concretely: "A call set-up packet
containing the origin and destination node addresses, the flow-rate desired,
and a primary call flag which is set, zips along the primary path checking
to see whether sufficient resources exist on each link of the primary path.
If they do, resources are booked on its way back, and the call commences.
If resources are not available on the primary path, alternate paths are
successively attempted by call set-ups (whose primary path flags are
reset)."

The flow-level simulator (:mod:`repro.sim.simulator`) abstracts this into an
instantaneous atomic admission decision.  This module implements the actual
distributed protocol over the event queue, with per-link propagation delay:

* **SETUP** travels forward, *checking* (not reserving) each link's
  admission rule — capacity for primary-flagged set-ups, the state-
  protection threshold for alternates;
* on a failed check the set-up **cranks back**: a failure notice returns to
  the origin, which tries the next route in its list;
* at the destination a **CONFIRM** retraces the route, *booking* one
  circuit per link on the way back; because checking and booking are
  separated by propagation time, a booking can find the circuit gone — a
  **race abort** — which releases the partial bookings and cranks back;
* the origin starts the call when the CONFIRM arrives and, at the end of
  the holding time, sends a **TEARDOWN** forward that releases each link.

On top of the paper's protocol this module models an *unreliable* signaling
plane and the defenses a deployment needs against it:

* every SETUP/CONFIRM/crankback/release transmission is lost independently
  with ``message_loss_probability`` (TEARDOWN is assumed link-layer-reliable,
  else completed calls would leak circuits forever);
* the origin arms a **setup timeout** per attempt, retrying the route up to
  ``max_retries`` times with exponential backoff before cranking to the
  next route;
* a **crankback budget** bounds the total reroute events (crankbacks, race
  aborts, retry exhaustions) a single call may consume;
* links start a **reservation hold-timer** per booking, releasing orphaned
  partial bookings whose CONFIRM or release message was lost — so a lost
  CONFIRM cannot leak circuits forever;
* a fault timeline (:mod:`repro.sim.faultplane`) may fail links mid-run:
  established calls crossing a failed link are severed (counted ``dropped``)
  and the link admits nothing until repaired.  The policy is *not* rebuilt —
  the signaling simulator studies the stale-policy regime.

With zero propagation delay, zero loss and no timers the protocol collapses
to the flow simulator's atomic decisions — the test suite asserts pathwise
equivalence, including under mid-run link failures — and with positive delay
or loss it measures what the abstraction hides: set-up latency, race aborts,
retry storms and orphaned reservations.  (Per the paper's footnote 2,
signaling bandwidth itself is assumed reserved and is not modelled.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .._compat import positional_shim
from ..routing.base import RouteChoice, RoutingPolicy
from ..topology.graph import Network
from .engine import EventQueue
from .faultplane import FaultEvent, FaultTimeline
from .metrics import SimulationResult
from .rng import substream
from .sigpolicy import CrankbackPolicy, HoldTimerPolicy, RetryPolicy
from .trace import ArrivalTrace

__all__ = ["SignalingConfig", "SignalingStats", "SignalingSimulator", "simulate_signaling"]


@positional_shim
@dataclass(frozen=True, kw_only=True)
class SignalingConfig:
    """Timing and reliability model for the signaling plane.

    Keyword-only: construct as ``SignalingConfig(propagation_delay=...)``.
    Positional construction still works but is deprecated (the field list
    grows; positional call sites would silently change meaning).

    ``propagation_delay`` is the one-way per-hop delay for any signaling
    message, in call-holding-time units (the paper's unit of time).  A
    typical long-haul hop at ~10 ms against minutes-long calls is ~1e-4.

    ``message_loss_probability`` drops each SETUP/CONFIRM/crankback/release
    transmission independently.  Any positive loss requires a
    ``setup_timeout`` (lost set-ups would otherwise strand calls silently)
    and a ``hold_timer`` (lost CONFIRMs would otherwise leak circuits).
    ``setup_timeout`` is the origin's wait before retrying an attempt; retry
    ``k`` waits ``setup_timeout * backoff_factor**k``.  After
    ``max_retries`` retries the origin cranks to the next route.
    ``crankback_budget`` caps a call's total reroute events (``None`` =
    unbounded, the paper's model).  ``hold_timer`` is how long a link holds
    an unconfirmed booking before releasing it.
    """

    propagation_delay: float = 0.0
    message_loss_probability: float = 0.0
    setup_timeout: float | None = None
    max_retries: int = 2
    backoff_factor: float = 2.0
    crankback_budget: int | None = None
    hold_timer: float | None = None

    def __post_init__(self) -> None:
        if self.propagation_delay < 0:
            raise ValueError("propagation_delay must be non-negative")
        if not 0.0 <= self.message_loss_probability < 1.0:
            raise ValueError("message_loss_probability must lie in [0, 1)")
        # Per-knob validation lives in the shared policy objects
        # (:mod:`repro.sim.sigpolicy`) so the cluster's cross-process
        # protocol rejects exactly the same values; constructing them here
        # surfaces any bad field at config time.
        self.retry_policy
        self.crankback_policy
        self.hold_policy
        if self.message_loss_probability > 0 and self.setup_timeout is None:
            raise ValueError(
                "message loss requires a setup_timeout: a lost SETUP would "
                "otherwise strand the call with no retry and no blocking count"
            )
        if self.message_loss_probability > 0 and self.hold_timer is None:
            raise ValueError(
                "message loss requires a hold_timer: a lost CONFIRM would "
                "otherwise leak partial bookings forever"
            )

    @property
    def retry_policy(self) -> RetryPolicy:
        """The setup timeout/backoff knobs as a shared policy object."""
        return RetryPolicy(
            timeout=self.setup_timeout,
            max_retries=self.max_retries,
            backoff_factor=self.backoff_factor,
        )

    @property
    def crankback_policy(self) -> CrankbackPolicy:
        """The reroute budget as a shared policy object."""
        return CrankbackPolicy(budget=self.crankback_budget)

    @property
    def hold_policy(self) -> HoldTimerPolicy:
        """The reservation hold-timer as a shared policy object."""
        return HoldTimerPolicy(duration=self.hold_timer)


@dataclass
class SignalingStats:
    """Protocol-level counters accumulated over a run.

    ``setups_sent`` through ``budget_blocked`` count events of calls that
    arrived inside the measured window; ``messages_lost``,
    ``hold_expirations`` and ``dropped_calls`` are whole-run protocol
    counters (warm-up included).  ``leaked_reservations`` is the final
    total occupancy once every call has completed and every timer fired —
    the run-end reservation audit, which must be zero for any correct
    configuration (every crankback, race abort, timeout, and lost message
    path must return its bookings).
    """

    setups_sent: int = 0
    crankbacks: int = 0
    race_aborts: int = 0
    established: int = 0
    setup_latency_sum: float = 0.0
    setup_timeouts: int = 0
    retries: int = 0
    budget_blocked: int = 0
    messages_lost: int = 0
    hold_expirations: int = 0
    dropped_calls: int = 0
    leaked_reservations: int = 0

    @property
    def mean_setup_latency(self) -> float:
        if self.established == 0:
            return 0.0
        return self.setup_latency_sum / self.established


@dataclass
class _PendingCall:
    """Origin-side state of one call working through its route list."""

    pair_index: int
    arrival_time: float
    holding_time: float
    choice: RouteChoice
    next_route: int = 0  # 0 = primary, k >= 1 = alternates[k - 1]
    measured: bool = False
    serial: int = 0  # attempt generation; stale messages/timers check it
    retries: int = 0  # timeout retries consumed on the current route
    reroutes: int = 0  # crankbacks + race aborts + retry exhaustions
    finished: bool = False  # established or definitively blocked
    established_serial: int = -1
    bookings: dict[int, list[int]] = field(default_factory=dict)

    def route(self) -> tuple[int, ...] | None:
        if self.next_route == 0:
            return self.choice.primary
        index = self.next_route - 1
        if index < len(self.choice.alternates):
            return self.choice.alternates[index]
        return None

    @property
    def is_primary_attempt(self) -> bool:
        return self.next_route == 0


class SignalingSimulator:
    """Distributed set-up/confirm/teardown signaling over a threshold policy.

    Consumes the same :class:`ArrivalTrace` and threshold-discipline
    :class:`RoutingPolicy` as the flow simulator, so results are directly
    comparable under common random numbers.  ``faults`` replays a
    :class:`~repro.sim.faultplane.FaultTimeline` mid-run (stale policy — no
    reconvergence — matching the flow simulator without ``rebuild_policy``).
    """

    def __init__(
        self,
        network: Network,
        policy: RoutingPolicy,
        trace: ArrivalTrace,
        warmup: float = 10.0,
        config: SignalingConfig = SignalingConfig(),
        faults: FaultTimeline | Sequence[FaultEvent] | None = None,
    ):
        if policy.discipline != "threshold":
            raise ValueError("signaling simulation supports threshold policies only")
        if policy.alt_thresholds is None:
            raise ValueError(f"policy {policy.name!r} lacks alternate thresholds")
        if warmup < 0 or warmup >= trace.duration:
            raise ValueError("warmup must lie in [0, duration)")
        if trace.is_multiclass:
            raise ValueError("signaling simulation supports unit-bandwidth traces only")
        self.network = network
        self.policy = policy
        self.trace = trace
        self.warmup = float(warmup)
        self.config = config
        if faults is None:
            self.faults: FaultTimeline | None = None
        elif isinstance(faults, FaultTimeline):
            self.faults = faults if faults else None
        else:
            self.faults = FaultTimeline(tuple(faults)) or None
        self.stats = SignalingStats()

    # The protocol below keeps one authoritative occupancy counter per link,
    # held (conceptually) by the link's upstream node: only that node checks
    # and books the link, so there is no multi-writer inconsistency — but
    # checking (SETUP) and booking (CONFIRM) are separated in time, hence
    # the race-abort path.

    def run(self) -> SimulationResult:
        network = self.network
        trace = self.trace
        config = self.config
        raw_capacities = [int(link.capacity) for link in network.links]
        capacities = [int(c) for c in network.capacities()]
        base_thresholds = [int(t) for t in self.policy.alt_thresholds]
        thresholds = list(base_thresholds)
        occupancy = [0] * network.num_links
        delay = config.propagation_delay
        loss_p = config.message_loss_probability
        loss_rng = substream(trace.seed, "signaling", "loss") if loss_p > 0 else None
        retry_policy = config.retry_policy
        crankback_policy = config.crankback_policy
        hold_policy = config.hold_policy
        hold_timer = hold_policy.duration
        dynamic = self.faults is not None

        num_pairs = len(trace.od_pairs)
        offered = [0] * num_pairs
        blocked = [0] * num_pairs
        dropped = [0] * num_pairs
        primary_carried = 0
        alternate_carried = 0
        stats = self.stats
        warmup = self.warmup

        queue = EventQueue()
        policy = self.policy

        # Established-call registry, for teardown and fault-induced drops.
        active_calls: dict[int, tuple[tuple[int, ...], int, bool]] = {}
        next_active_id = 0
        link_down = [network.is_failed(i) for i in range(network.num_links)]

        def limit_for(call: _PendingCall, link: int) -> int:
            return capacities[link] if call.is_primary_attempt else thresholds[link]

        def transmit(q: EventQueue, callback, payload, hops: int = 1) -> bool:
            """Schedule a protocol message ``hops`` propagation hops away.

            Returns False — dropping the event — with the compound per-hop
            loss probability; the sender never learns (timeouts do).
            """
            if loss_rng is not None:
                survive = (1.0 - loss_p) ** hops
                if loss_rng.random() >= survive:
                    stats.messages_lost += 1
                    return False
            q.schedule_in(hops * delay if delay else 0.0, callback, payload)
            return True

        def release_link(call: _PendingCall, serial: int, link: int) -> bool:
            """Release one booking of attempt ``serial`` exactly once."""
            links = call.bookings.get(serial)
            if not links or link not in links:
                return False
            links.remove(link)
            occupancy[link] -= 1
            return True

        def finish_blocked(call: _PendingCall) -> None:
            if call.finished:
                return
            call.finished = True
            call.serial += 1  # invalidate in-flight messages and timers
            if call.measured:
                blocked[call.pair_index] += 1

        def start_attempt(q: EventQueue, call: _PendingCall) -> None:
            if call.finished:
                return
            if crankback_policy.exhausted(call.reroutes):
                if call.measured:
                    stats.budget_blocked += 1
                finish_blocked(call)
                return
            route = call.route()
            if route is None:
                finish_blocked(call)
                return
            call.serial += 1
            serial = call.serial
            if call.measured:
                stats.setups_sent += 1
            if retry_policy.enabled:
                q.schedule_in(retry_policy.wait_for(call.retries),
                              on_timeout, (call, serial))
            # Forward pass: the set-up reaches hop k at now + k * delay and
            # checks that hop's link.  The first check happens at the origin
            # itself — no transmission yet, so nothing to lose.
            advance_setup(q, (call, route, 0, serial))

        def on_timeout(q: EventQueue, payload) -> None:
            call, serial = payload
            if call.finished or call.serial != serial:
                return  # the attempt concluded; stale timer
            if call.measured:
                stats.setup_timeouts += 1
            if hold_timer is None:
                # Idealized rollback: without per-link hold timers the
                # expired attempt's partial bookings are released here so
                # occupancy stays conserved in lossless configurations.
                for link in list(call.bookings.get(serial, ())):
                    release_link(call, serial, link)
            if retry_policy.allows_retry(call.retries):
                call.retries += 1
                if call.measured:
                    stats.retries += 1
                start_attempt(q, call)
                return
            call.retries = 0
            call.next_route += 1
            call.reroutes += 1
            start_attempt(q, call)

        def advance_setup(q: EventQueue, payload) -> None:
            call, route, hop, serial = payload
            if call.serial != serial or call.finished:
                return  # superseded by a timeout retry or a crankback
            if hop == len(route):
                # Destination reached: CONFIRM retraces, booking backwards.
                advance_confirm(q, (call, route, len(route) - 1, serial))
                return
            link = route[hop]
            if occupancy[link] + 1 > limit_for(call, link):
                # Crankback: the failure notice needs hop+1 hops home; the
                # origin moves on when it hears, after the round trip.
                if call.measured:
                    stats.crankbacks += 1
                call.next_route += 1
                call.retries = 0
                call.reroutes += 1
                transmit(q, retry, (call, serial), hops=hop + 1)
                return
            transmit(q, advance_setup, (call, route, hop + 1, serial))

        def retry(q: EventQueue, payload) -> None:
            call, serial = payload
            if call.serial != serial or call.finished:
                return  # a timeout already moved the call along
            start_attempt(q, call)

        def advance_confirm(q: EventQueue, payload) -> None:
            call, route, hop, serial = payload
            if call.serial != serial or call.finished:
                return  # expired mid-flight; hold timers reap the bookings
            if hop < 0:
                # Confirm reached the origin: the call is up.
                call.finished = True
                call.established_serial = serial
                call.bookings.pop(serial, None)  # bookings became the circuit
                nonlocal next_active_id
                call_id = next_active_id
                next_active_id += 1
                active_calls[call_id] = (route, call.pair_index, call.measured)
                if call.measured:
                    stats.established += 1
                    stats.setup_latency_sum += q.now - call.arrival_time
                    nonlocal primary_carried, alternate_carried
                    if call.is_primary_attempt:
                        primary_carried += 1
                    else:
                        alternate_carried += 1
                q.schedule_in(call.holding_time, start_teardown, call_id)
                return
            link = route[hop]
            if occupancy[link] + 1 > limit_for(call, link):
                # The circuit vanished between check and booking: race abort.
                if call.measured:
                    stats.race_aborts += 1
                call.next_route += 1
                call.retries = 0
                call.reroutes += 1
                release_and_retry(q, (call, route, hop + 1, serial))
                return
            occupancy[link] += 1
            call.bookings.setdefault(serial, []).append(link)
            if hold_timer is not None:
                q.schedule_in(hold_timer, hold_check, (call, serial, link))
            transmit(q, advance_confirm, (call, route, hop - 1, serial))

        def hold_check(q: EventQueue, payload) -> None:
            call, serial, link = payload
            if call.established_serial == serial:
                return  # the booking became a live circuit
            links = call.bookings.get(serial)
            if not links or link not in links:
                return  # already released by the race-abort walk
            if not call.finished and call.serial == serial:
                # The attempt is still in flight (slow round trip); refresh
                # rather than yank a reservation the CONFIRM may complete.
                q.schedule_in(hold_timer, hold_check, payload)
                return
            release_link(call, serial, link)
            stats.hold_expirations += 1

        def release_and_retry(q: EventQueue, payload) -> None:
            call, route, hop, serial = payload
            if hop == len(route):
                transmit(q, retry, (call, serial), hops=0)
                return
            release_link(call, serial, route[hop])
            transmit(q, release_and_retry, (call, route, hop + 1, serial))

        def start_teardown(q: EventQueue, call_id: int) -> None:
            record = active_calls.pop(call_id, None)
            if record is None:
                return  # the call was severed by a link failure
            advance_teardown(q, (record[0], 0))

        def advance_teardown(q: EventQueue, payload) -> None:
            # TEARDOWN is modelled as reliable (link-layer retransmission):
            # losing it would leak circuits of *completed* calls forever,
            # which no deployment tolerates.
            route, hop = payload
            if hop == len(route):
                return
            occupancy[route[hop]] -= 1
            q.schedule_in(delay, advance_teardown, (route, hop + 1))

        def fault_event(q: EventQueue, payload) -> None:
            links, up = payload
            newly_down = []
            for link in links:
                if link_down[link] == (not up):
                    continue
                link_down[link] = not up
                if up:
                    capacities[link] = raw_capacities[link]
                    thresholds[link] = base_thresholds[link]
                else:
                    capacities[link] = 0
                    thresholds[link] = 0
                    newly_down.append(link)
            if not newly_down:
                return
            downset = set(newly_down)
            for call_id in list(active_calls):
                route, pair, measured = active_calls[call_id]
                if downset.intersection(route):
                    for link in route:
                        occupancy[link] -= 1
                    del active_calls[call_id]
                    stats.dropped_calls += 1
                    if measured:
                        dropped[pair] += 1

        def arrival(q: EventQueue, payload) -> None:
            pair, holding, uniform = payload
            measured = q.now >= warmup
            if measured:
                offered[pair] += 1
            od = trace.od_pairs[pair]
            options = policy.choices.get(od, ())
            if not options:
                if measured:
                    blocked[pair] += 1
                return
            choice = (
                options[0]
                if len(options) == 1
                else policy.select_choice(od, uniform)
            )
            call = _PendingCall(
                pair_index=pair,
                arrival_time=q.now,
                holding_time=holding,
                choice=choice,
                measured=measured,
            )
            start_attempt(q, call)

        # Fault events are scheduled before the arrivals so that, at equal
        # times, a failure applies before the arrival's admission decision —
        # matching the flow simulator's advance-then-admit ordering.
        if dynamic:
            for when, links, up in self.faults.resolve(network):
                queue.schedule(when, fault_event, (links, up))
        times = trace.times.tolist()
        od_index = trace.od_index.tolist()
        holding = trace.holding_times.tolist()
        uniforms = trace.uniforms.tolist()
        for i in range(len(times)):
            queue.schedule(times[i], arrival, (od_index[i], holding[i], uniforms[i]))
        queue.run()

        # Run-end reservation audit: every call has completed, every
        # hold-timer and teardown has fired, so any residual occupancy is a
        # booking some crankback/abort/timeout path failed to return.
        stats.leaked_reservations = int(sum(occupancy))

        return SimulationResult(
            od_pairs=trace.od_pairs,
            offered=np.asarray(offered, dtype=np.int64),
            blocked=np.asarray(blocked, dtype=np.int64),
            primary_carried=primary_carried,
            alternate_carried=alternate_carried,
            warmup=warmup,
            duration=trace.duration,
            seed=trace.seed,
            dropped=np.asarray(dropped, dtype=np.int64) if dynamic else None,
        )


def simulate_signaling(
    network: Network,
    policy: RoutingPolicy,
    trace: ArrivalTrace,
    warmup: float = 10.0,
    propagation_delay: float = 0.0,
    config: SignalingConfig | None = None,
    faults: FaultTimeline | Sequence[FaultEvent] | None = None,
) -> tuple[SimulationResult, SignalingStats]:
    """Run the signaling-level simulation; returns result + protocol stats.

    Pass ``config`` for the full reliability model (loss, retries, budgets,
    hold timers); the bare ``propagation_delay`` shorthand is kept for the
    delay-only studies.
    """
    if config is None:
        config = SignalingConfig(propagation_delay=propagation_delay)
    simulator = SignalingSimulator(
        network,
        policy,
        trace,
        warmup=warmup,
        config=config,
        faults=faults,
    )
    result = simulator.run()
    return result, simulator.stats
