"""Deterministic fault processes: mid-run link failures and repairs.

The paper studies *static* failures only (Section 4.2.2 removes links
``2<->3`` and ``7<->9`` before the run).  This module generates *dynamic*
fault timelines — per-duplex-link up/down events that the simulators consume
mid-run — so the paper's graceful-degradation claim can be stress-tested
under churn: links failing and recovering while calls are in flight and
while the routing policy's tables are stale.

Three fault processes are provided, all resolved into one merged
:class:`FaultTimeline` of :class:`FaultEvent` objects:

* :class:`ScheduledFailure` — fail at a known time, optionally repair later
  (the deterministic "maintenance window" model, and the dynamic analogue of
  the paper's static scenarios);
* :class:`MarkovLinkFaults` — alternating exponential up/down times (the
  classic Markov-modulated availability model); and
* :class:`FlappingLink` — periodic short outages, the pathological
  interface-flap pattern that stresses reconvergence logic hardest.

Stochastic up/down times draw from :func:`repro.sim.rng.substream` keyed by
the root seed and the link's endpoints, so (a) a timeline is exactly
reproducible from its seed, and (b) adding a fault model on one link never
perturbs the events generated for another.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..topology.graph import Network
from .rng import substream

__all__ = [
    "FaultEvent",
    "FaultStats",
    "FaultTimeline",
    "ScheduledFailure",
    "MarkovLinkFaults",
    "FlappingLink",
    "build_fault_timeline",
    "single_failure_timeline",
]


@dataclass
class FaultStats:
    """Fault-plane counters accumulated over one simulation run.

    ``events_applied`` counts timeline events consumed, ``calls_dropped``
    the in-progress calls severed by link failures (warm-up included, unlike
    the result's measured ``dropped`` counters), and ``reconvergences`` the
    times at which the routing policy was re-derived against the changed
    topology (empty when no ``rebuild_policy`` was supplied).
    """

    events_applied: int = 0
    calls_dropped: int = 0
    reconvergences: list[float] = field(default_factory=list)


@dataclass(frozen=True)
class FaultEvent:
    """One state change of a duplex link: at ``time`` it goes down or up."""

    time: float
    duplex: tuple[int, int]
    up: bool

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault event time must be non-negative, got {self.time}")
        a, b = self.duplex
        if a == b:
            raise ValueError(f"fault event needs two distinct endpoints, got {a}<->{b}")

    def describe(self) -> str:
        a, b = self.duplex
        state = "up" if self.up else "down"
        return f"t={self.time:g}: {a}<->{b} {state}"


@dataclass(frozen=True)
class FaultTimeline:
    """A time-ordered sequence of link up/down events.

    Construct via :func:`build_fault_timeline` (validates against a network
    and normalizes ordering) or directly from events for hand-written
    scenarios.  Events are sorted by ``(time, endpoints, up)`` so equal-time
    events fire in a deterministic order.
    """

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.time, e.duplex, e.up))
        )
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def resolve(self, network: Network) -> list[tuple[float, tuple[int, ...], bool]]:
        """Resolve endpoint pairs to link indices against ``network``.

        Returns ``(time, link_indices, up)`` triples (both directions of the
        duplex link).  Raises ``KeyError`` naming the offending pair when an
        event references a link the network does not have.
        """
        resolved = []
        for event in self.events:
            a, b = event.duplex
            resolved.append((event.time, network.duplex_link_indices(a, b), event.up))
        return resolved

    def describe(self) -> str:
        if not self.events:
            return "fault timeline: empty"
        return "fault timeline: " + "; ".join(e.describe() for e in self.events)


@dataclass(frozen=True)
class ScheduledFailure:
    """A one-shot failure at ``fail_at``, optionally repaired at ``repair_at``."""

    a: int
    b: int
    fail_at: float
    repair_at: float | None = None

    def __post_init__(self) -> None:
        if self.fail_at < 0:
            raise ValueError(f"fail_at must be non-negative, got {self.fail_at}")
        if self.repair_at is not None and self.repair_at <= self.fail_at:
            raise ValueError(
                f"repair_at ({self.repair_at}) must come after fail_at ({self.fail_at})"
            )

    def events(self, duration: float, seed: int) -> list[FaultEvent]:
        duplex = (self.a, self.b)
        out = []
        if self.fail_at < duration:
            out.append(FaultEvent(self.fail_at, duplex, up=False))
            if self.repair_at is not None and self.repair_at < duration:
                out.append(FaultEvent(self.repair_at, duplex, up=True))
        return out


@dataclass(frozen=True)
class MarkovLinkFaults:
    """Alternating exponential up/down times (Markov-modulated availability).

    The link starts ``initial_up`` at t=0, stays up for exp(``mean_uptime``)
    and down for exp(``mean_downtime``) sojourns.  Long-run availability is
    ``mean_uptime / (mean_uptime + mean_downtime)``.
    """

    a: int
    b: int
    mean_uptime: float
    mean_downtime: float
    initial_up: bool = True

    def __post_init__(self) -> None:
        if self.mean_uptime <= 0 or self.mean_downtime <= 0:
            raise ValueError("mean_uptime and mean_downtime must be positive")

    def events(self, duration: float, seed: int) -> list[FaultEvent]:
        rng = substream(seed, "faultplane", self.a, self.b)
        duplex = (self.a, self.b)
        out = []
        up = self.initial_up
        time = 0.0
        if not up:
            out.append(FaultEvent(0.0, duplex, up=False))
        while True:
            sojourn = rng.exponential(self.mean_uptime if up else self.mean_downtime)
            time += float(sojourn)
            if time >= duration:
                return out
            up = not up
            out.append(FaultEvent(time, duplex, up=up))


@dataclass(frozen=True)
class FlappingLink:
    """Periodic short outages: down every ``period``, up ``outage`` later.

    Models the interface-flap pathology: ``cycles`` consecutive down/up
    pairs starting at ``start``.  The outage must be shorter than the
    period so the link always recovers before it next fails.
    """

    a: int
    b: int
    start: float
    period: float
    cycles: int
    outage: float | None = None  # defaults to period / 2

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"start must be non-negative, got {self.start}")
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if self.cycles < 1:
            raise ValueError(f"cycles must be at least 1, got {self.cycles}")
        outage = self.outage if self.outage is not None else self.period / 2.0
        if not 0 < outage < self.period:
            raise ValueError(
                f"outage ({outage}) must lie strictly inside (0, period={self.period})"
            )

    def events(self, duration: float, seed: int) -> list[FaultEvent]:
        duplex = (self.a, self.b)
        outage = self.outage if self.outage is not None else self.period / 2.0
        out = []
        for cycle in range(self.cycles):
            down = self.start + cycle * self.period
            if down >= duration:
                break
            out.append(FaultEvent(down, duplex, up=False))
            repair = down + outage
            if repair < duration:
                out.append(FaultEvent(repair, duplex, up=True))
        return out


def build_fault_timeline(
    network: Network,
    specs: Sequence[ScheduledFailure | MarkovLinkFaults | FlappingLink],
    duration: float,
    seed: int = 0,
) -> FaultTimeline:
    """Generate and merge the fault events of several per-link fault models.

    Every spec's duplex link must exist in ``network`` (both directions) and
    no two specs may target the same physical link — overlapping processes
    would generate contradictory up/down sequences.  Events at or beyond
    ``duration`` are discarded (the run ends before they could matter).
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    seen: set[tuple[int, int]] = set()
    events: list[FaultEvent] = []
    for spec in specs:
        pair = (spec.a, spec.b)
        normalized = (min(pair), max(pair))
        network.duplex_link_indices(*pair)  # KeyError names an unknown pair
        if normalized in seen:
            raise ValueError(
                f"duplicate fault spec for duplex link {pair[0]}<->{pair[1]}"
            )
        seen.add(normalized)
        events.extend(spec.events(duration, seed))
    return FaultTimeline(tuple(events))


def single_failure_timeline(
    a: int, b: int, fail_at: float, repair_at: float | None = None
) -> FaultTimeline:
    """The simplest dynamic scenario: one link fails once, optionally repairs."""
    events = [FaultEvent(fail_at, (a, b), up=False)]
    if repair_at is not None:
        events.append(FaultEvent(repair_at, (a, b), up=True))
    return FaultTimeline(tuple(events))
