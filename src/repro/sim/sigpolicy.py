"""Reusable signaling-robustness policies: timeouts, crankback, hold-timers.

The hardened signaling semantics grew up inside
:class:`repro.sim.signaling.SignalingSimulator` as loose config fields and
inline arithmetic.  The sharded admission cluster
(:mod:`repro.serve.cluster`) speaks the *same* protocol across real
processes — per-attempt timeouts with exponential backoff, a bounded
crankback budget per call, and reservation hold-timers that reap orphaned
bookings — so the policies live here as small value objects both planes
share.  Each is a frozen dataclass with pure methods: given the attempt
or reroute count, it answers "how long do I wait", "may I reroute again",
"when does this reservation expire" — no clocks, no I/O, and therefore
identical behaviour in simulated time and on the wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy", "CrankbackPolicy", "HoldTimerPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Per-attempt timeout with exponential backoff and a retry cap.

    Attempt ``k`` (0-based) waits ``timeout * backoff_factor**k`` before
    being declared lost; after ``max_retries`` retries of one route the
    caller moves on (cranks back).  ``timeout=None`` disables timeouts —
    only valid over a lossless transport.
    """

    timeout: float | None = None
    max_retries: int = 2
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive when set")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be at least 1")

    @property
    def enabled(self) -> bool:
        return self.timeout is not None

    def wait_for(self, retries: int) -> float:
        """Timeout for the attempt after ``retries`` prior retries."""
        if self.timeout is None:
            raise ValueError("retry policy has no timeout configured")
        return self.timeout * self.backoff_factor**retries

    def allows_retry(self, retries: int) -> bool:
        """May the route be retried after ``retries`` timeouts already?"""
        return retries < self.max_retries


@dataclass(frozen=True)
class CrankbackPolicy:
    """Bound on the total reroute events one call may consume.

    Crankbacks, race aborts, and retry exhaustions all count; ``budget``
    of ``None`` is the paper's unbounded model.  The budget is checked
    *before* each attempt: a call whose reroute count exceeds it is
    refused rather than allowed to hunt forever.
    """

    budget: int | None = None

    def __post_init__(self) -> None:
        if self.budget is not None and self.budget < 0:
            raise ValueError("budget must be non-negative when set")

    def exhausted(self, reroutes: int) -> bool:
        """Has the call spent more reroutes than the budget allows?"""
        return self.budget is not None and reroutes > self.budget


@dataclass(frozen=True)
class HoldTimerPolicy:
    """Reservation hold-timer: how long an unconfirmed booking survives.

    A link (or shard) that books capacity during set-up starts this timer;
    if no confirm or release arrives within ``duration`` the booking is
    presumed orphaned (lost message, dead coordinator) and auto-released.
    ``duration=None`` disables the timer — only safe when no message can
    be lost and no coordinator can die.
    """

    duration: float | None = None

    def __post_init__(self) -> None:
        if self.duration is not None and self.duration <= 0:
            raise ValueError("duration must be positive when set")

    @property
    def enabled(self) -> bool:
        return self.duration is not None

    def deadline(self, now: float) -> float:
        """Absolute expiry time of a booking made at ``now``."""
        if self.duration is None:
            raise ValueError("hold-timer policy has no duration configured")
        return now + self.duration
