"""Call-by-call loss-network simulation.

Replays a pre-generated :class:`~repro.sim.trace.ArrivalTrace` under a
compiled :class:`~repro.routing.base.RoutingPolicy`.  The model is the
paper's: each call requests one unit of bandwidth on every link of one path;
links are loss systems (no queueing, no retries beyond the policy's path
list); holding times came with the trace.  Every policy sees the identical
arrival sample — the paper's common-random-numbers methodology.

Admission semantics:

* a **primary** attempt succeeds iff every link on the primary path has a
  free circuit;
* under the *threshold* discipline, an **alternate** attempt succeeds iff
  every link's occupancy is strictly below the policy's per-link alternate
  threshold (``C`` for uncontrolled routing, ``C - r`` with state
  protection); alternates are tried in increasing hop length and the call is
  lost if all fail;
* under the *shadow* discipline (Ott-Krishnan) all candidate paths are
  priced by the policy's per-link tables at current occupancies and the call
  takes the cheapest path iff that price does not exceed the call revenue.

The simulator is deliberately a tight, allocation-light loop: occupancies
live in a plain list, departures in a heap of ``(time, path)`` entries.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..routing.base import RoutingPolicy
from ..topology.graph import Network
from .metrics import SimulationResult
from .trace import ArrivalTrace

__all__ = ["LossNetworkSimulator", "simulate"]

_REVENUE_EPS = 1e-12


class LossNetworkSimulator:
    """One network + one policy + one trace -> one :class:`SimulationResult`.

    ``warmup`` truncates measurement: calls arriving before it still occupy
    circuits (warming the state up from the idle network, as the paper does
    with its 10 time units) but are not counted.
    """

    def __init__(
        self,
        network: Network,
        policy: RoutingPolicy,
        trace: ArrivalTrace,
        warmup: float = 10.0,
        collect_link_stats: bool = False,
        initial_occupancy: np.ndarray | None = None,
    ):
        if warmup < 0 or warmup >= trace.duration:
            raise ValueError(
                f"warmup must lie in [0, duration={trace.duration}), got {warmup}"
            )
        if policy.network is not network:
            # A copy with identical structure is fine; object identity is not
            # required, but link counts must agree.
            if policy.network.num_links != network.num_links:
                raise ValueError("policy was compiled for a different network")
        self.network = network
        self.policy = policy
        self.trace = trace
        self.warmup = float(warmup)
        self.collect_link_stats = collect_link_stats
        #: Time-averaged occupancy per link over the measured window, filled
        #: by :meth:`run` when ``collect_link_stats`` is set (else None).
        self.mean_link_occupancy: np.ndarray | None = None
        # Warm start: pre-existing calls at t = 0, one synthetic single-link
        # call per occupied circuit, with fresh exp(1) remaining holding
        # times (memorylessness makes that the exact stationary view).  Used
        # by the hysteresis experiments to start in a congested state.
        if initial_occupancy is not None:
            occupancy0 = np.asarray(initial_occupancy, dtype=np.int64)
            if occupancy0.shape != (network.num_links,):
                raise ValueError("initial_occupancy must be per-link")
            capacities = network.capacities()
            if (occupancy0 < 0).any() or (occupancy0 > capacities).any():
                raise ValueError("initial occupancy must lie in [0, capacity]")
            self.initial_occupancy: np.ndarray | None = occupancy0
        else:
            self.initial_occupancy = None

    def run(self) -> SimulationResult:
        policy = self.policy
        trace = self.trace
        capacities = self.network.capacities().tolist()
        num_pairs = len(trace.od_pairs)

        # Per-O-D fast lookup.  Most pairs have a single deterministic route
        # choice; the bifurcated case consults the per-call uniform variate.
        single_choice = []
        multi = []
        for od in trace.od_pairs:
            options = policy.choices.get(od, ())
            if len(options) == 1:
                single_choice.append(options[0])
                multi.append(None)
            elif len(options) == 0:
                single_choice.append(None)
                multi.append(None)
            else:
                single_choice.append(None)
                multi.append((options, policy.cum_probs[od].tolist()))

        times = trace.times.tolist()
        od_index = trace.od_index.tolist()
        holding = trace.holding_times.tolist()
        uniforms = trace.uniforms.tolist()
        warmup = self.warmup
        bandwidths = (
            trace.bandwidths.tolist() if trace.bandwidths is not None else None
        )
        class_index = (
            trace.class_index.tolist() if trace.class_index is not None else None
        )
        num_classes = len(trace.class_names)
        class_offered = [0] * num_classes
        class_blocked = [0] * num_classes

        occupancy = [0] * self.network.num_links
        departures: list[tuple[float, tuple[int, ...], int]] = []
        if self.initial_occupancy is not None:
            from .rng import substream

            warm_rng = substream(trace.seed, "warm-start")
            for link_index, count in enumerate(self.initial_occupancy):
                for __ in range(int(count)):
                    occupancy[link_index] += 1
                    departures.append(
                        (float(warm_rng.exponential(1.0)), (link_index,), 1)
                    )
            heapq.heapify(departures)
        offered = [0] * num_pairs
        blocked = [0] * num_pairs
        primary_carried = 0
        alternate_carried = 0

        if policy.discipline == "threshold":
            if policy.alt_thresholds is None:
                raise ValueError(f"policy {policy.name!r} lacks alternate thresholds")
            thresholds = [int(t) for t in policy.alt_thresholds]
            run_call = self._make_threshold_step(capacities, thresholds, occupancy)
        elif policy.discipline == "length-threshold":
            tables = getattr(policy, "length_thresholds", None)
            if tables is None:
                raise ValueError(f"policy {policy.name!r} lacks length thresholds")
            run_call = self._make_length_threshold_step(capacities, tables, occupancy)
        elif policy.discipline == "least-busy":
            if policy.alt_thresholds is None:
                raise ValueError(f"policy {policy.name!r} lacks alternate thresholds")
            thresholds = [int(t) for t in policy.alt_thresholds]
            run_call = self._make_least_busy_step(capacities, thresholds, occupancy)
        elif policy.discipline == "shadow":
            if policy.price_tables is None:
                raise ValueError(f"policy {policy.name!r} lacks price tables")
            run_call = self._make_shadow_step(capacities, occupancy)
        else:
            raise ValueError(f"unknown routing discipline {policy.discipline!r}")

        collect = self.collect_link_stats
        if collect:
            occupancy_integral = [0.0] * self.network.num_links
            last_change = [warmup] * self.network.num_links

            def note_change(link: int, now_: float) -> None:
                since = last_change[link]
                if now_ > warmup:
                    start = since if since > warmup else warmup
                    occupancy_integral[link] += occupancy[link] * (now_ - start)
                last_change[link] = now_

        heap_push = heapq.heappush
        heap_pop = heapq.heappop
        for call in range(len(times)):
            now = times[call]
            while departures and departures[0][0] <= now:
                departure_time, path, width = heap_pop(departures)
                for link in path:
                    if collect:
                        note_change(link, departure_time)
                    occupancy[link] -= width
            pair = od_index[call]
            width = 1 if bandwidths is None else bandwidths[call]
            measured = now >= warmup
            if measured:
                offered[pair] += 1
                if class_index is not None:
                    class_offered[class_index[call]] += 1
            choice = single_choice[pair]
            if choice is None:
                options = multi[pair]
                if options is None:
                    # Disconnected pair: the call is necessarily lost.
                    if measured:
                        blocked[pair] += 1
                        if class_index is not None:
                            class_blocked[class_index[call]] += 1
                    continue
                route_options, cum = options
                u = uniforms[call]
                pick = 0
                while pick < len(cum) - 1 and u >= cum[pick]:
                    pick += 1
                choice = route_options[pick]
            path, used_alternate = run_call(choice, width)
            if path is None:
                if measured:
                    blocked[pair] += 1
                    if class_index is not None:
                        class_blocked[class_index[call]] += 1
                continue
            for link in path:
                if collect:
                    note_change(link, now)
                occupancy[link] += width
            heap_push(departures, (now + holding[call], path, width))
            if measured:
                if used_alternate:
                    alternate_carried += 1
                else:
                    primary_carried += 1

        if collect:
            horizon = trace.duration
            while departures and departures[0][0] <= horizon:
                departure_time, path, width = heap_pop(departures)
                for link in path:
                    note_change(link, departure_time)
                    occupancy[link] -= width
            window = horizon - warmup
            for link in range(self.network.num_links):
                note_change(link, horizon)
            self.mean_link_occupancy = (
                np.asarray(occupancy_integral) / window if window > 0 else None
            )

        return SimulationResult(
            od_pairs=trace.od_pairs,
            offered=np.asarray(offered, dtype=np.int64),
            blocked=np.asarray(blocked, dtype=np.int64),
            primary_carried=primary_carried,
            alternate_carried=alternate_carried,
            warmup=warmup,
            duration=trace.duration,
            seed=trace.seed,
            class_names=trace.class_names,
            class_offered=np.asarray(class_offered, dtype=np.int64),
            class_blocked=np.asarray(class_blocked, dtype=np.int64),
        )

    # ------------------------------------------------------------- admission

    def _make_threshold_step(self, capacities, thresholds, occupancy):
        """Build the per-call admission closure for threshold policies.

        A primary call of bandwidth ``width`` fits iff every link has
        ``width`` free units; an alternate call additionally may not push
        any link past its protection threshold.
        """

        def step(choice, width):
            for link in choice.primary:
                if occupancy[link] + width > capacities[link]:
                    break
            else:
                return choice.primary, False
            for alt in choice.alternates:
                for link in alt:
                    if occupancy[link] + width > thresholds[link]:
                        break
                else:
                    return alt, True
            return None, False

        return step

    def _make_length_threshold_step(self, capacities, tables, occupancy):
        """Admission closure for hop-length-aware protection.

        ``tables[h]`` is the per-link threshold list applied to alternate
        paths of exactly ``h`` hops — shorter alternates face laxer
        thresholds since they displace fewer primaries (the Section-3.2
        refinement).  Primary admission is unchanged.
        """

        def step(choice, width):
            for link in choice.primary:
                if occupancy[link] + width > capacities[link]:
                    break
            else:
                return choice.primary, False
            for alt in choice.alternates:
                thresholds = tables[len(alt)]
                for link in alt:
                    if occupancy[link] + width > thresholds[link]:
                        break
                else:
                    return alt, True
            return None, False

        return step

    def _make_least_busy_step(self, capacities, thresholds, occupancy):
        """Admission closure for least-busy alternate selection.

        Among the alternates whose every link admits the call under its
        threshold, pick the one with the largest bottleneck headroom
        (minimum of ``threshold - occupancy - width`` over its links); the
        candidate order (shortest first) breaks ties, matching LBA's
        preference for short alternates.
        """

        def step(choice, width):
            for link in choice.primary:
                if occupancy[link] + width > capacities[link]:
                    break
            else:
                return choice.primary, False
            best_path = None
            best_headroom = -1
            for alt in choice.alternates:
                headroom = None
                for link in alt:
                    free = thresholds[link] - occupancy[link] - width
                    if free < 0:
                        headroom = None
                        break
                    if headroom is None or free < headroom:
                        headroom = free
                if headroom is not None and headroom > best_headroom:
                    best_headroom = headroom
                    best_path = alt
            if best_path is not None:
                return best_path, True
            return None, False

        return step

    def _make_shadow_step(self, capacities, occupancy):
        """Build the per-call admission closure for shadow-price policies.

        Prices are per unit of bandwidth: a ``width``-unit call at link
        occupancy ``s`` is charged the sum of the unit prices at states
        ``s, s+1, ..., s+width-1`` (the unit-decomposition view).
        """
        tables = self.policy.price_tables
        revenue = getattr(self.policy, "revenue", 1.0) + _REVENUE_EPS

        def step(choice, width):
            best_path = None
            best_price = revenue
            best_is_alternate = False
            candidates = (choice.primary,) + choice.alternates
            for position, path in enumerate(candidates):
                price = 0.0
                feasible = True
                for link in path:
                    state = occupancy[link]
                    if state + width > capacities[link]:
                        feasible = False
                        break
                    table = tables[link]
                    for unit in range(width):
                        price += table[state + unit]
                    if price >= best_price:
                        feasible = False
                        break
                if feasible and price < best_price:
                    best_price = price
                    best_path = path
                    best_is_alternate = position > 0
            return best_path, best_is_alternate

        return step


def simulate(
    network: Network,
    policy: RoutingPolicy,
    trace: ArrivalTrace,
    warmup: float = 10.0,
) -> SimulationResult:
    """Convenience wrapper: build and run a :class:`LossNetworkSimulator`."""
    return LossNetworkSimulator(network, policy, trace, warmup).run()
