"""Call-by-call loss-network simulation.

Replays a pre-generated :class:`~repro.sim.trace.ArrivalTrace` under a
compiled :class:`~repro.routing.base.RoutingPolicy`.  The model is the
paper's: each call requests one unit of bandwidth on every link of one path;
links are loss systems (no queueing, no retries beyond the policy's path
list); holding times came with the trace.  Every policy sees the identical
arrival sample — the paper's common-random-numbers methodology.

Admission semantics:

* a **primary** attempt succeeds iff every link on the primary path has a
  free circuit;
* under the *threshold* discipline, an **alternate** attempt succeeds iff
  every link's occupancy is strictly below the policy's per-link alternate
  threshold (``C`` for uncontrolled routing, ``C - r`` with state
  protection); alternates are tried in increasing hop length and the call is
  lost if all fail;
* under the *shadow* discipline (Ott-Krishnan) all candidate paths are
  priced by the policy's per-link tables at current occupancies and the call
  takes the cheapest path iff that price does not exceed the call revenue.

The simulator is deliberately a tight, allocation-light loop: occupancies
live in a plain list, departures in a heap of
``(time, path, width, pair, measured)`` entries.

Two loops implement the semantics.  The *general* loop handles every
feature (faults, binned timelines, multi-class traces, bandwidths, link
statistics, all disciplines) and doubles as the reference implementation.
The *fast* loop specializes the common benchmark/replication shape —
threshold discipline, unit bandwidth, no faults, no timeline — with
per-pair route entries precompiled to bare ``(primary, alternates)`` tuple
pairs, admission inlined into the call loop, and the trace consumed through
a single ``zip``.  Both loops execute the identical admission decisions in
the identical order, so every counter in the result (blocking, carried
splits, drops) is bit-identical for a fixed seed; ``run(reference=True)``
forces the general loop (the equivalence tests and perf benchmarks compare
the two).

Dynamic faults (beyond the paper's static Section-4.2.2 scenarios): a
:class:`~repro.sim.faultplane.FaultTimeline` makes links fail and recover
*mid-run*.  When a link goes down, calls holding circuits on it are severed
(counted in ``SimulationResult.dropped``, distinct from blocked) and the
link admits nothing; when it comes back up it admits calls immediately.
Routing state, however, reconverges only after ``reconvergence_delay``: the
stale policy keeps routing until a ``rebuild_policy`` callback re-derives
path tables, primary loads and protection levels against the changed
topology — the regime where Theorem 1's guarantee is computed against the
wrong topology, which is exactly what the dynamic-failure experiments
measure.
"""

from __future__ import annotations

import heapq
from itertools import repeat
from typing import Callable, Sequence

import numpy as np

from ..routing.base import RoutingPolicy
from ..topology.graph import Network
from .faultplane import FaultEvent, FaultStats, FaultTimeline
from .metrics import BinnedSeries, SimulationResult
from .trace import ArrivalTrace

__all__ = ["LossNetworkSimulator", "simulate"]

_REVENUE_EPS = 1e-12
_INFINITY = float("inf")
#: Stand-in uniform column for traces whose pairs are all deterministic —
#: the fast loop's zip never consumes a real variate then.
_ZEROS = repeat(0.0)


class LossNetworkSimulator:
    """One network + one policy + one trace -> one :class:`SimulationResult`.

    ``warmup`` truncates measurement: calls arriving before it still occupy
    circuits (warming the state up from the idle network, as the paper does
    with its 10 time units) but are not counted.

    ``faults`` enables mid-run link failures/repairs; ``rebuild_policy``
    (optional) is called with the failure-adjusted network after each
    topology change, ``reconvergence_delay`` time units late, and must
    return a fresh policy of the same discipline family.  Without it the
    stale policy routes for the whole run (links down still admit nothing).
    ``timeline_bin`` collects a :class:`~repro.sim.metrics.BinnedSeries` of
    per-bin offered/blocked/dropped counts on :attr:`binned_series`.
    """

    def __init__(
        self,
        network: Network,
        policy: RoutingPolicy,
        trace: ArrivalTrace,
        warmup: float = 10.0,
        collect_link_stats: bool = False,
        initial_occupancy: np.ndarray | None = None,
        faults: FaultTimeline | Sequence[FaultEvent] | None = None,
        reconvergence_delay: float = 0.0,
        rebuild_policy: Callable[[Network], RoutingPolicy] | None = None,
        timeline_bin: float | None = None,
    ):
        if warmup < 0 or warmup >= trace.duration:
            raise ValueError(
                f"warmup must lie in [0, duration={trace.duration}), got {warmup}"
            )
        if policy.network is not network:
            # A copy with identical structure is fine; object identity is not
            # required, but link counts must agree.
            if policy.network.num_links != network.num_links:
                raise ValueError("policy was compiled for a different network")
        if reconvergence_delay < 0:
            raise ValueError("reconvergence_delay must be non-negative")
        if timeline_bin is not None and timeline_bin <= 0:
            raise ValueError("timeline_bin must be positive")
        self.network = network
        self.policy = policy
        self.trace = trace
        self.warmup = float(warmup)
        self.collect_link_stats = collect_link_stats
        if faults is None:
            self.faults: FaultTimeline | None = None
        elif isinstance(faults, FaultTimeline):
            self.faults = faults if faults else None
        else:
            self.faults = FaultTimeline(tuple(faults)) or None
        self.reconvergence_delay = float(reconvergence_delay)
        self.rebuild_policy = rebuild_policy
        self.timeline_bin = timeline_bin
        #: Fault-plane counters, filled by :meth:`run` when faults are set.
        self.fault_stats: FaultStats | None = None
        #: Per-bin offered/blocked/dropped, filled when ``timeline_bin`` set.
        self.binned_series: BinnedSeries | None = None
        #: Time-averaged occupancy per link over the measured window, filled
        #: by :meth:`run` when ``collect_link_stats`` is set (else None).
        self.mean_link_occupancy: np.ndarray | None = None
        # Warm start: pre-existing calls at t = 0, one synthetic single-link
        # call per occupied circuit, with fresh exp(1) remaining holding
        # times (memorylessness makes that the exact stationary view).  Used
        # by the hysteresis experiments to start in a congested state.
        if initial_occupancy is not None:
            occupancy0 = np.asarray(initial_occupancy, dtype=np.int64)
            if occupancy0.shape != (network.num_links,):
                raise ValueError("initial_occupancy must be per-link")
            capacities = network.capacities()
            if (occupancy0 < 0).any() or (occupancy0 > capacities).any():
                raise ValueError("initial occupancy must lie in [0, capacity]")
            self.initial_occupancy: np.ndarray | None = occupancy0
        else:
            self.initial_occupancy = None

    def run(
        self, reference: bool = False, backend: str | None = None
    ) -> SimulationResult:
        """Run the simulation under the requested ``backend``.

        ``backend="auto"`` (the default) picks the fastest engine whose
        specialization fits; ``"batch"`` requests the lockstep array kernel
        (one-seed batch); ``"fast"`` the per-seed vectorized loop;
        ``"reference"`` forces the general event loop.  All engines make the
        identical admission decisions in the identical order, so the returned
        statistics are bit-identical regardless of backend — ineligible
        requests silently fall back down the chain (batch → fast → general).
        The ``reference`` boolean is the internal pre-``backend`` spelling
        (``True`` ≡ ``backend="reference"``); the deprecation shim for it
        lives in :func:`repro.sim.simulator.simulate`.
        """
        if backend is None:
            backend = "reference" if reference else "auto"
        if backend == "reference":
            return self._run_general()
        if backend == "batch" and self._batch_eligible():
            from .batch import BatchSimulator

            return BatchSimulator(
                self.network, self.policy, [self.trace], self.warmup
            ).run()[0]
        if self._fast_eligible():
            return self._run_fast()
        return self._run_general()

    def _fast_eligible(self) -> bool:
        trace = self.trace
        return (
            self.faults is None
            and self.timeline_bin is None
            and not self.collect_link_stats
            and trace.bandwidths is None
            and trace.class_index is None
            and self.policy.discipline == "threshold"
        )

    def _batch_eligible(self) -> bool:
        from .batch import batch_ineligibility

        return (
            self.faults is None
            and self.timeline_bin is None
            and not self.collect_link_stats
            and self.initial_occupancy is None
            and batch_ineligibility(self.policy, [self.trace]) is None
        )

    def _run_fast(self) -> SimulationResult:
        """Specialized hot loop; see :meth:`run` for the eligibility rules.

        The trace is consumed in two phases split at the warmup boundary
        (arrival times are non-decreasing), so the measured loop carries no
        per-call warmup test and the warmup loop no counters; ``offered`` is
        a single ``bincount`` over the measured arrivals.

        There is no departure heap.  Every candidate departure time is known
        up front (``times + holding_times``), so one stable argsort yields
        the global release order; the loop walks a pointer over it and
        releases each admitted call's path from a per-call slot.  Blocked
        calls leave their slot empty and are skipped.  A call whose slot is
        still unwritten because its *arrival* has not been processed yet
        (possible only when a holding time is exactly zero) stops the walk —
        the stable sort orders equal departure times by call index, so every
        already-admitted release at that timestamp has been handled by then,
        which keeps occupancy, and with it every admission decision,
        bit-identical to the reference heap.
        """
        trace = self.trace
        num_links = self.network.num_links
        capacities = self.network.capacities().tolist()
        num_pairs = len(trace.od_pairs)
        num_calls = len(trace.times)
        warmup = self.warmup

        occupancy = [0] * num_links
        dep_times = trace.times + trace.holding_times
        admitted: list[tuple[int, ...] | None] = [None] * num_calls
        if self.initial_occupancy is not None:
            from .rng import substream

            warm_rng = substream(trace.seed, "warm-start")
            warm_times = []
            for link_index, count in enumerate(self.initial_occupancy):
                for __ in range(int(count)):
                    occupancy[link_index] += 1
                    warm_times.append(float(warm_rng.exponential(1.0)))
                    admitted.append((link_index,))
            dep_times = np.concatenate([dep_times, np.asarray(warm_times)])
        order = np.argsort(dep_times, kind="stable")
        dep_sorted = dep_times[order].tolist()
        dep_index = order.tolist()
        total_deps = len(dep_index)
        blocked = [0] * num_pairs
        primary_carried = 0
        alternate_carried = 0

        policy = self.policy
        if policy.alt_thresholds is None:
            raise ValueError(f"policy {policy.name!r} lacks alternate thresholds")
        thresholds = [int(t) for t in policy.alt_thresholds]
        # Per-pair precompiled entries: deterministic pairs carry a bare
        # (primary, alternates) tuple; bifurcated pairs carry the candidate
        # entries plus the cumulative probabilities consulted per call.
        single_entry: list[tuple | None] = []
        multi: list[tuple | None] = []
        for od in trace.od_pairs:
            options = policy.choices.get(od, ())
            if len(options) == 1:
                single_entry.append((options[0].primary, options[0].alternates))
                multi.append(None)
            elif len(options) == 0:
                single_entry.append(None)
                multi.append(None)
            else:
                single_entry.append(None)
                multi.append(
                    (
                        [(c.primary, c.alternates) for c in options],
                        policy.cum_probs[od].tolist(),
                    )
                )
        has_multi = any(entry is not None for entry in multi)

        warm_count = int(np.searchsorted(trace.times, warmup, side="left"))
        times = trace.times.tolist()
        od_index = trace.od_index.tolist()
        holding = trace.holding_times.tolist()
        uniforms = trace.uniforms.tolist() if has_multi else None

        ptr = 0
        call_i = 0
        for phase in (0, 1):
            section = (
                slice(0, warm_count) if phase == 0
                else slice(warm_count, num_calls)
            )
            counted = phase == 1
            if has_multi:
                rows = zip(
                    times[section], od_index[section],
                    holding[section], uniforms[section],
                )
            else:
                rows = zip(
                    times[section], od_index[section],
                    holding[section], _ZEROS,
                )
            for now, pair, hold, u in rows:
                while ptr < total_deps and dep_sorted[ptr] <= now:
                    j = dep_index[ptr]
                    if call_i <= j < num_calls:
                        break  # that call's arrival is still ahead of us
                    path = admitted[j]
                    ptr += 1
                    if path is not None:
                        for link in path:
                            occupancy[link] -= 1
                entry = single_entry[pair]
                if entry is None:
                    options = multi[pair]
                    if options is None:
                        # Disconnected pair: the call is necessarily lost.
                        if counted:
                            blocked[pair] += 1
                        call_i += 1
                        continue
                    route_options, cum = options
                    pick = 0
                    while pick < len(cum) - 1 and u >= cum[pick]:
                        pick += 1
                    entry = route_options[pick]
                primary, alternates = entry
                for link in primary:
                    if occupancy[link] >= capacities[link]:
                        break
                else:
                    for link in primary:
                        occupancy[link] += 1
                    admitted[call_i] = primary
                    call_i += 1
                    if counted:
                        primary_carried += 1
                    continue
                path = None
                for alt in alternates:
                    for link in alt:
                        if occupancy[link] >= thresholds[link]:
                            break
                    else:
                        path = alt
                        break
                if path is None:
                    if counted:
                        blocked[pair] += 1
                    call_i += 1
                    continue
                for link in path:
                    occupancy[link] += 1
                admitted[call_i] = path
                call_i += 1
                if counted:
                    alternate_carried += 1

        offered = np.bincount(
            trace.od_index[warm_count:], minlength=num_pairs
        ).astype(np.int64)
        num_classes = len(trace.class_names)
        return SimulationResult(
            od_pairs=trace.od_pairs,
            offered=offered,
            blocked=np.asarray(blocked, dtype=np.int64),
            primary_carried=primary_carried,
            alternate_carried=alternate_carried,
            warmup=warmup,
            duration=trace.duration,
            seed=trace.seed,
            class_names=trace.class_names,
            class_offered=np.zeros(num_classes, dtype=np.int64),
            class_blocked=np.zeros(num_classes, dtype=np.int64),
            dropped=None,
        )

    def _run_general(self) -> SimulationResult:
        trace = self.trace
        num_links = self.network.num_links
        capacities = self.network.capacities().tolist()
        num_pairs = len(trace.od_pairs)

        times = trace.times.tolist()
        od_index = trace.od_index.tolist()
        holding = trace.holding_times.tolist()
        uniforms = trace.uniforms.tolist()
        warmup = self.warmup
        bandwidths = (
            trace.bandwidths.tolist() if trace.bandwidths is not None else None
        )
        class_index = (
            trace.class_index.tolist() if trace.class_index is not None else None
        )
        num_classes = len(trace.class_names)
        class_offered = [0] * num_classes
        class_blocked = [0] * num_classes

        occupancy = [0] * num_links
        departures: list[tuple[float, tuple[int, ...], int, int, int]] = []
        if self.initial_occupancy is not None:
            from .rng import substream

            warm_rng = substream(trace.seed, "warm-start")
            for link_index, count in enumerate(self.initial_occupancy):
                for __ in range(int(count)):
                    occupancy[link_index] += 1
                    departures.append(
                        (float(warm_rng.exponential(1.0)), (link_index,), 1, -1, 0)
                    )
            heapq.heapify(departures)
        offered = [0] * num_pairs
        blocked = [0] * num_pairs
        dropped = [0] * num_pairs
        primary_carried = 0
        alternate_carried = 0

        single_choice, multi, run_call, threshold_lists, pristine_thresholds = (
            self._compile(self.policy, capacities, occupancy)
        )

        collect = self.collect_link_stats
        if collect:
            occupancy_integral = [0.0] * num_links
            last_change = [warmup] * num_links

            def note_change(link: int, now_: float) -> None:
                since = last_change[link]
                if now_ > warmup:
                    start = since if since > warmup else warmup
                    occupancy_integral[link] += occupancy[link] * (now_ - start)
                last_change[link] = now_
        else:
            note_change = None

        # ------------------------------------------------------ fault plane
        bin_width = self.timeline_bin
        if bin_width is not None:
            num_bins = max(1, int(np.ceil(trace.duration / bin_width)))
            bin_offered = [0] * num_bins
            bin_blocked = [0] * num_bins
            bin_dropped = [0] * num_bins

        fault_events = self.faults.resolve(self.network) if self.faults else []
        dynamic = bool(fault_events)
        if dynamic:
            stats = FaultStats()
            raw_capacities = [link.capacity for link in self.network.links]
            down = [self.network.is_failed(i) for i in range(num_links)]
            topo = self.network.copy()
            pending_rebuilds: list[float] = []
            fault_cursor = 0
            topo_version = 0
            rebuilt_version = 0
            self.fault_stats = stats

        heap_push = heapq.heappush
        heap_pop = heapq.heappop

        def release_departure(entry) -> None:
            departure_time, path, width, __, ___ = entry
            for link in path:
                if collect:
                    note_change(link, departure_time)
                occupancy[link] -= width

        def apply_fault_event(event_time, links, up) -> None:
            nonlocal topo_version
            newly_down = []
            for link in links:
                if down[link] == (not up):
                    continue  # no-op transition, e.g. failing a failed link
                down[link] = not up
                topo.set_link_state(link, up)
                topo_version += 1
                if up:
                    capacities[link] = raw_capacities[link]
                    for lst, pristine in zip(threshold_lists, pristine_thresholds):
                        lst[link] = pristine[link]
                else:
                    capacities[link] = 0
                    for lst in threshold_lists:
                        lst[link] = 0
                    newly_down.append(link)
            stats.events_applied += 1
            if newly_down:
                downset = set(newly_down)
                kept = []
                for entry in departures:
                    if downset.intersection(entry[1]):
                        release_departure(
                            (event_time, entry[1], entry[2], entry[3], entry[4])
                        )
                        stats.calls_dropped += 1
                        if entry[3] >= 0 and entry[4]:
                            dropped[entry[3]] += 1
                            if bin_width is not None:
                                bin_dropped[
                                    min(num_bins - 1, int(event_time / bin_width))
                                ] += 1
                    else:
                        kept.append(entry)
                departures[:] = kept
                heapq.heapify(departures)
            if self.rebuild_policy is not None:
                heap_push(pending_rebuilds, event_time + self.reconvergence_delay)

        def reconverge(now_: float) -> None:
            nonlocal single_choice, multi, run_call
            nonlocal threshold_lists, pristine_thresholds, rebuilt_version
            if rebuilt_version == topo_version:
                stats.reconvergences.append(now_)
                return  # topology unchanged since the last rebuild
            new_policy = self.rebuild_policy(topo)
            single_choice, multi, run_call, threshold_lists, pristine_thresholds = (
                self._compile(new_policy, capacities, occupancy)
            )
            # The fresh tables assume the current topology; re-impose the
            # admission overlay for links that are (still) down.
            for link in range(num_links):
                if down[link]:
                    capacities[link] = 0
                    for lst in threshold_lists:
                        lst[link] = 0
            rebuilt_version = topo_version
            stats.reconvergences.append(now_)

        def advance_to(now_: float) -> None:
            """Process departures, fault events and rebuilds up to ``now_``.

            Departures win ties (a call completing exactly at a failure
            instant completes), then fault events, then reconvergences — so
            a zero-delay rebuild still sees its own fault applied first.
            """
            nonlocal fault_cursor
            while True:
                next_dep = departures[0][0] if departures else _INFINITY
                if dynamic:
                    next_fault = (
                        fault_events[fault_cursor][0]
                        if fault_cursor < len(fault_events)
                        else _INFINITY
                    )
                    next_rebuild = (
                        pending_rebuilds[0] if pending_rebuilds else _INFINITY
                    )
                else:
                    next_fault = next_rebuild = _INFINITY
                upcoming = min(next_dep, next_fault, next_rebuild)
                if upcoming > now_:
                    break
                if next_dep <= next_fault and next_dep <= next_rebuild:
                    release_departure(heap_pop(departures))
                elif next_fault <= next_rebuild:
                    __, links, up = fault_events[fault_cursor]
                    fault_cursor += 1
                    apply_fault_event(next_fault, links, up)
                else:
                    heap_pop(pending_rebuilds)
                    reconverge(next_rebuild)

        simple = not dynamic and bin_width is None
        for call in range(len(times)):
            now = times[call]
            if simple:
                while departures and departures[0][0] <= now:
                    release_departure(heap_pop(departures))
            else:
                advance_to(now)
            pair = od_index[call]
            width = 1 if bandwidths is None else bandwidths[call]
            measured = now >= warmup
            if measured:
                offered[pair] += 1
                if class_index is not None:
                    class_offered[class_index[call]] += 1
                if bin_width is not None:
                    bin_offered[min(num_bins - 1, int(now / bin_width))] += 1
            choice = single_choice[pair]
            if choice is None:
                options = multi[pair]
                if options is None:
                    # Disconnected pair: the call is necessarily lost.
                    if measured:
                        blocked[pair] += 1
                        if class_index is not None:
                            class_blocked[class_index[call]] += 1
                        if bin_width is not None:
                            bin_blocked[min(num_bins - 1, int(now / bin_width))] += 1
                    continue
                route_options, cum = options
                u = uniforms[call]
                pick = 0
                while pick < len(cum) - 1 and u >= cum[pick]:
                    pick += 1
                choice = route_options[pick]
            path, used_alternate = run_call(choice, width, pair, call)
            if path is None:
                if measured:
                    blocked[pair] += 1
                    if class_index is not None:
                        class_blocked[class_index[call]] += 1
                    if bin_width is not None:
                        bin_blocked[min(num_bins - 1, int(now / bin_width))] += 1
                continue
            for link in path:
                if collect:
                    note_change(link, now)
                occupancy[link] += width
            heap_push(
                departures,
                (now + holding[call], path, width, pair, 1 if measured else 0),
            )
            if measured:
                if used_alternate:
                    alternate_carried += 1
                else:
                    primary_carried += 1

        horizon = trace.duration
        if dynamic or bin_width is not None:
            # Fault events between the last arrival and the horizon still
            # count (drops after the final call must be recorded).
            advance_to(horizon)
        if collect:
            while departures and departures[0][0] <= horizon:
                release_departure(heap_pop(departures))
            window = horizon - warmup
            for link in range(num_links):
                note_change(link, horizon)
            self.mean_link_occupancy = (
                np.asarray(occupancy_integral) / window if window > 0 else None
            )

        if bin_width is not None:
            self.binned_series = BinnedSeries(
                bin_width=float(bin_width),
                offered=np.asarray(bin_offered, dtype=np.int64),
                blocked=np.asarray(bin_blocked, dtype=np.int64),
                dropped=np.asarray(bin_dropped, dtype=np.int64),
            )

        return SimulationResult(
            od_pairs=trace.od_pairs,
            offered=np.asarray(offered, dtype=np.int64),
            blocked=np.asarray(blocked, dtype=np.int64),
            primary_carried=primary_carried,
            alternate_carried=alternate_carried,
            warmup=warmup,
            duration=trace.duration,
            seed=trace.seed,
            class_names=trace.class_names,
            class_offered=np.asarray(class_offered, dtype=np.int64),
            class_blocked=np.asarray(class_blocked, dtype=np.int64),
            dropped=np.asarray(dropped, dtype=np.int64) if dynamic else None,
        )

    # ----------------------------------------------------- policy compilation

    def _compile(self, policy: RoutingPolicy, capacities, occupancy):
        """Compile one policy into the per-call lookup tables and closure.

        Returns ``(single_choice, multi, run_call, threshold_lists,
        pristine_thresholds)``.  ``run_call(choice, width, pair, call)`` is
        the admission closure — ``pair``/``call`` are the O-D index and the
        absolute call number, used only by the stateful random-alternate
        disciplines (the others ignore them).  ``threshold_lists`` are the
        mutable per-link
        threshold lists captured by the admission closure (empty for the
        shadow discipline) and ``pristine_thresholds`` their untouched
        copies; the fault plane zeroes entries of down links and restores
        them from the pristine copy on repair.  Called again after each
        reconvergence, so everything policy-derived is rebuilt here.
        """
        # Per-O-D fast lookup.  Most pairs have a single deterministic route
        # choice; the bifurcated case consults the per-call uniform variate.
        single_choice = []
        multi = []
        for od in self.trace.od_pairs:
            options = policy.choices.get(od, ())
            if len(options) == 1:
                single_choice.append(options[0])
                multi.append(None)
            elif len(options) == 0:
                single_choice.append(None)
                multi.append(None)
            else:
                single_choice.append(None)
                multi.append((options, policy.cum_probs[od].tolist()))

        if policy.discipline == "threshold":
            if policy.alt_thresholds is None:
                raise ValueError(f"policy {policy.name!r} lacks alternate thresholds")
            thresholds = [int(t) for t in policy.alt_thresholds]
            run_call = self._make_threshold_step(capacities, thresholds, occupancy)
            threshold_lists = [thresholds]
        elif policy.discipline == "dar":
            if policy.alt_thresholds is None:
                raise ValueError(f"policy {policy.name!r} lacks alternate thresholds")
            thresholds = [int(t) for t in policy.alt_thresholds]
            run_call = self._make_dar_step(policy, capacities, thresholds, occupancy)
            threshold_lists = [thresholds]
        elif policy.discipline == "power-of-d":
            if policy.alt_thresholds is None:
                raise ValueError(f"policy {policy.name!r} lacks alternate thresholds")
            thresholds = [int(t) for t in policy.alt_thresholds]
            run_call = self._make_power_of_d_step(
                policy, capacities, thresholds, occupancy
            )
            threshold_lists = [thresholds]
        elif policy.discipline == "length-threshold":
            tables = getattr(policy, "length_thresholds", None)
            if tables is None:
                raise ValueError(f"policy {policy.name!r} lacks length thresholds")
            tables = {length: list(row) for length, row in tables.items()}
            run_call = self._make_length_threshold_step(capacities, tables, occupancy)
            threshold_lists = [tables[length] for length in sorted(tables)]
        elif policy.discipline == "least-busy":
            if policy.alt_thresholds is None:
                raise ValueError(f"policy {policy.name!r} lacks alternate thresholds")
            thresholds = [int(t) for t in policy.alt_thresholds]
            run_call = self._make_least_busy_step(capacities, thresholds, occupancy)
            threshold_lists = [thresholds]
        elif policy.discipline == "shadow":
            if policy.price_tables is None:
                raise ValueError(f"policy {policy.name!r} lacks price tables")
            run_call = self._make_shadow_step(policy, capacities, occupancy)
            threshold_lists = []
        else:
            raise ValueError(f"unknown routing discipline {policy.discipline!r}")
        pristine = [list(lst) for lst in threshold_lists]
        return single_choice, multi, run_call, threshold_lists, pristine

    # ------------------------------------------------------------- admission

    def _make_threshold_step(self, capacities, thresholds, occupancy):
        """Build the per-call admission closure for threshold policies.

        A primary call of bandwidth ``width`` fits iff every link has
        ``width`` free units; an alternate call additionally may not push
        any link past its protection threshold.
        """

        def step(choice, width, pair, call):
            for link in choice.primary:
                if occupancy[link] + width > capacities[link]:
                    break
            else:
                return choice.primary, False
            for alt in choice.alternates:
                for link in alt:
                    if occupancy[link] + width > thresholds[link]:
                        break
                else:
                    return alt, True
            return None, False

        return step

    def _make_length_threshold_step(self, capacities, tables, occupancy):
        """Admission closure for hop-length-aware protection.

        ``tables[h]`` is the per-link threshold list applied to alternate
        paths of exactly ``h`` hops — shorter alternates face laxer
        thresholds since they displace fewer primaries (the Section-3.2
        refinement).  Primary admission is unchanged.
        """

        def step(choice, width, pair, call):
            for link in choice.primary:
                if occupancy[link] + width > capacities[link]:
                    break
            else:
                return choice.primary, False
            for alt in choice.alternates:
                thresholds = tables[len(alt)]
                for link in alt:
                    if occupancy[link] + width > thresholds[link]:
                        break
                else:
                    return alt, True
            return None, False

        return step

    def _make_least_busy_step(self, capacities, thresholds, occupancy):
        """Admission closure for least-busy alternate selection.

        Among the alternates whose every link admits the call under its
        threshold, pick the one with the largest bottleneck headroom
        (minimum of ``threshold - occupancy - width`` over its links); the
        candidate order (shortest first) breaks ties, matching LBA's
        preference for short alternates.
        """

        def step(choice, width, pair, call):
            for link in choice.primary:
                if occupancy[link] + width > capacities[link]:
                    break
            else:
                return choice.primary, False
            best_path = None
            best_headroom = -1
            for alt in choice.alternates:
                headroom = None
                for link in alt:
                    free = thresholds[link] - occupancy[link] - width
                    if free < 0:
                        headroom = None
                        break
                    if headroom is None or free < headroom:
                        headroom = free
                if headroom is not None and headroom > best_headroom:
                    best_headroom = headroom
                    best_path = alt
            if best_path is not None:
                return best_path, True
            return None, False

        return step

    def _make_dar_step(self, policy, capacities, thresholds, occupancy):
        """Admission closure for DAR (sticky random alternate) selection.

        Each pair remembers one sticky alternate index (initially the
        shortest alternate).  A primary-blocked call tries only the sticky
        alternate; if that is infeasible the call is lost and the pair
        resamples its sticky index from the call's positional draw in
        ``policy.route_draws(trace)`` — draw ``j`` belongs to call ``j``
        whether or not earlier calls consumed theirs, which is what keeps
        the scalar loop and the batch kernel on identical streams.  Sticky
        state resets on fault-plane reconvergence (the closure is rebuilt).
        """
        draws = policy.route_draws(self.trace)
        sticky = [0] * len(self.trace.od_pairs)

        def step(choice, width, pair, call):
            for link in choice.primary:
                if occupancy[link] + width > capacities[link]:
                    break
            else:
                return choice.primary, False
            alts = choice.alternates
            n_alts = len(alts)
            if n_alts == 0:
                return None, False
            alt = alts[sticky[pair]]
            for link in alt:
                if occupancy[link] + width > thresholds[link]:
                    sticky[pair] = int(draws[call] * n_alts)
                    return None, False
            return alt, True

        return step

    def _make_power_of_d_step(self, policy, capacities, thresholds, occupancy):
        """Admission closure for power-of-d random alternate selection.

        A primary-blocked call samples ``d`` alternates (with replacement)
        from its positional draw row and takes the first one attaining the
        best bottleneck score ``min(threshold - occupancy)``; it is admitted
        iff that score covers the call's width.  Evaluating the score for
        infeasible candidates too keeps the selection identical to the batch
        kernel's argmax formulation.
        """
        draws = policy.route_draws(self.trace)

        def step(choice, width, pair, call):
            for link in choice.primary:
                if occupancy[link] + width > capacities[link]:
                    break
            else:
                return choice.primary, False
            alts = choice.alternates
            n_alts = len(alts)
            if n_alts == 0:
                return None, False
            best_alt = None
            best_score = None
            for u in draws[call]:
                alt = alts[int(u * n_alts)]
                score = min(thresholds[link] - occupancy[link] for link in alt)
                if best_score is None or score > best_score:
                    best_score = score
                    best_alt = alt
            if best_score >= width:
                return best_alt, True
            return None, False

        return step

    def _make_shadow_step(self, policy, capacities, occupancy):
        """Build the per-call admission closure for shadow-price policies.

        Prices are per unit of bandwidth: a ``width``-unit call at link
        occupancy ``s`` is charged the sum of the unit prices at states
        ``s, s+1, ..., s+width-1`` (the unit-decomposition view).
        """
        tables = policy.price_tables
        revenue = getattr(policy, "revenue", 1.0) + _REVENUE_EPS

        def step(choice, width, pair, call):
            best_path = None
            best_price = revenue
            best_is_alternate = False
            candidates = (choice.primary,) + choice.alternates
            for position, path in enumerate(candidates):
                price = 0.0
                feasible = True
                for link in path:
                    state = occupancy[link]
                    if state + width > capacities[link]:
                        feasible = False
                        break
                    table = tables[link]
                    for unit in range(width):
                        price += table[state + unit]
                    if price >= best_price:
                        feasible = False
                        break
                if feasible and price < best_price:
                    best_price = price
                    best_path = path
                    best_is_alternate = position > 0
            return best_path, best_is_alternate

        return step


def simulate(
    network: Network,
    policy: RoutingPolicy,
    trace: ArrivalTrace,
    warmup: float = 10.0,
    collect_link_stats: bool = False,
    initial_occupancy: np.ndarray | None = None,
    faults: FaultTimeline | Sequence[FaultEvent] | None = None,
    reconvergence_delay: float = 0.0,
    rebuild_policy: Callable[[Network], RoutingPolicy] | None = None,
    timeline_bin: float | None = None,
    reference: bool | None = None,
    backend: str | None = None,
) -> SimulationResult:
    """Convenience wrapper: build and run a :class:`LossNetworkSimulator`.

    Every constructor knob is plumbed through, so link statistics, warm
    starts and the dynamic fault plane are all reachable without touching
    the class directly.  ``backend`` selects the engine (``"auto"`` /
    ``"batch"`` / ``"fast"`` / ``"reference"``, see
    :meth:`LossNetworkSimulator.run`); the legacy ``reference=True`` flag
    still maps to ``backend="reference"`` through the
    :func:`repro._compat.resolve_backend` deprecation shim.
    """
    from .._compat import resolve_backend

    resolved = resolve_backend(backend, reference, owner="simulate")
    return LossNetworkSimulator(
        network,
        policy,
        trace,
        warmup,
        collect_link_stats=collect_link_stats,
        initial_occupancy=initial_occupancy,
        faults=faults,
        reconvergence_delay=reconvergence_delay,
        rebuild_policy=rebuild_policy,
        timeline_bin=timeline_bin,
    ).run(backend=resolved)
