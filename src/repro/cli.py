"""Command-line interface: regenerate the paper's artifacts as text tables.

Installed as ``repro-routing``.  Subcommands map to the paper's
tables/figures, the analyses built around them, and an evaluate mode for
user-supplied networks::

    repro-routing list                       # registered experiment ids
    repro-routing experiment FIG3            # regenerate one artifact
    repro-routing report --output REPORT.md  # regenerate all of them
    repro-routing table1                     # NSFNet protection levels
    repro-routing figure2                    # r vs load curves
    repro-routing quadrangle --seeds 10      # figures 3/4 sweep
    repro-routing nsfnet --hops 6            # figures 6/7 sweep
    repro-routing census                     # alternate-path census by H
    repro-routing dynamic-failures           # mid-run link failure + recovery
    repro-routing bistability                # mean-field fixed points
    repro-routing theorem1                   # numeric bound verification
    repro-routing evaluate --network my.json --traffic demand.json

The ``lab`` group orchestrates studies through the content-addressed result
store (resumable, cached, with JSONL telemetry)::

    repro-routing lab run --topology nsfnet --traffic nominal --seeds 10
    repro-routing lab run --experiment FIG6   # an experiment's job graph
    repro-routing lab status                  # per-study progress
    repro-routing lab resume                  # finish an interrupted study
    repro-routing lab ls                      # store contents
    repro-routing lab gc                      # drop unreferenced results

The ``serve`` group runs the online admission-control service
(:mod:`repro.serve`): the same compiled policies answering one call at a
time over a JSON-lines socket, with micro-batching, overload shedding and
live telemetry::

    repro-routing serve run --topology nsfnet --port 7411
    repro-routing serve replay --duration 60 --socket   # vs the simulator
    repro-routing serve bench --overload-factor 2
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

import numpy as np

from .analysis.bistability import find_fixed_points
from .core.protection import min_protection_level
from .core.theorem import verify_theorem1
from .experiments.figures import (
    figure2_protection_levels,
    nsfnet_sweep,
    quadrangle_sweep,
)
from .experiments.report import format_sweep, format_table, format_table1
from .experiments.runner import PAPER_CONFIG
from .experiments.tables import regenerate_table1, table1_agreement

__all__ = ["main"]


def _config(args: argparse.Namespace):
    return PAPER_CONFIG.scaled(
        duration_factor=args.duration / 100.0, num_seeds=args.seeds
    )


def _cmd_figure2(args: argparse.Namespace) -> int:
    curves = figure2_protection_levels()
    loads = curves[2][0]
    rows = []
    for i, load in enumerate(loads):
        if load % args.step:
            continue
        rows.append([load] + [int(curves[h][1][i]) for h in (2, 6, 120)])
    print("Figure 2: protection level r vs primary load (C = 100)")
    print(format_table(["Lambda", "r(H=2)", "r(H=6)", "r(H=120)"], rows))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    rows = regenerate_table1()
    print("Table 1: NSFNet directed links under the nominal (calibrated) load")
    print(format_table1(rows))
    summary = table1_agreement(rows)
    print(
        f"\nagreement: loads {summary['load_match_fraction']:.0%}, "
        f"protection levels {summary['protection_match_fraction']:.0%} "
        f"(worst gap {summary['worst_protection_gap']:.0f}; residual "
        "mismatches trace to the paper's integer-rounded Lambda column)"
    )
    return 0


def _maybe_save(args: argparse.Namespace, points, title: str) -> None:
    if getattr(args, "output", None):
        from .experiments.storage import save_sweep

        save_sweep(args.output, points, config=_config(args), title=title)
        print(f"\nsaved to {args.output}")


def _cmd_quadrangle(args: argparse.Namespace) -> int:
    title = "Figures 3/4: fully-connected quadrangle, blocking vs per-pair load"
    points = quadrangle_sweep(config=_config(args))
    print(format_sweep(points, title))
    _maybe_save(args, points, title)
    return 0


def _cmd_nsfnet(args: argparse.Namespace) -> int:
    hops = None if args.hops in (None, 11) else args.hops
    points = nsfnet_sweep(max_hops=hops, config=_config(args), include_ott_krishnan=args.ott_krishnan)
    label = "H=11 (unlimited)" if hops is None else f"H={hops}"
    title = f"Figures 6/7: NSFNet model, {label}, blocking vs load (nominal = 10)"
    print(format_sweep(points, title))
    _maybe_save(args, points, title)
    return 0


def _cmd_theorem1(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    rows = []
    for __ in range(args.trials):
        capacity = int(rng.integers(2, 60))
        protection = int(rng.integers(0, capacity + 1))
        demand = float(rng.uniform(0.1, 1.8)) * capacity
        nu = demand * float(rng.uniform(0.3, 1.0))
        overflow = np.sort(rng.uniform(0, 2.0 * capacity, size=capacity))[::-1].copy()
        check = verify_theorem1(demand, capacity, protection, overflow, primary_rate=nu)
        rows.append(
            [capacity, protection, round(demand, 1),
             check.worst_displacement, check.bound, "yes" if check.holds else "NO"]
        )
    print("Theorem 1: exact displacement vs bound (random non-increasing overflow profiles)")
    print(format_table(["C", "r", "Lambda", "L (exact)", "bound", "holds"], rows))
    return 0


def _cmd_census(args: argparse.Namespace) -> int:
    from .topology.nsfnet import nsfnet_backbone
    from .topology.paths import alternate_path_census, build_path_table

    network = nsfnet_backbone()
    rows = []
    for hops in args.hops:
        census = alternate_path_census(build_path_table(network, max_hops=hops))
        rows.append([hops, census["mean"], int(census["max"]), int(census["min"])])
    print("NSFNet alternate-path census by hop limit H")
    print(format_table(["H", "mean", "max", "min"], rows))
    return 0


def _cmd_bistability(args: argparse.Namespace) -> int:
    rows = []
    for load in args.loads:
        unprotected = find_fixed_points(load, args.capacity, 0, max_attempts=args.attempts)
        level = min_protection_level(load, args.capacity, 2)
        protected = find_fixed_points(
            load, args.capacity, level, max_attempts=args.attempts
        )
        rows.append(
            [
                load,
                len(unprotected),
                unprotected[0].blocking,
                unprotected[-1].blocking,
                level,
                protected[-1].blocking,
            ]
        )
    print(
        f"Symmetric mean-field fixed points, C={args.capacity}, "
        f"{args.attempts} alternate attempts"
    )
    print(
        format_table(
            ["load", "#fp(r=0)", "low B", "high B", "r(Eq15)", "B(protected)"], rows
        )
    )
    return 0


def _cmd_dynamic_failures(args: argparse.Namespace) -> int:
    from .experiments.robustness import dynamic_failure_comparison

    try:
        reports = dynamic_failure_comparison(
            config=_config(args),
            load_scale=args.load_scale,
            duplex=tuple(args.link),
            reconvergence_delay=args.reconvergence,
        )
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        raise SystemExit(f"dynamic-failures: {message}")
    if args.json:
        from .experiments.storage import statistic_to_dict

        print(json.dumps({
            "schema": "repro-dynamic-failures-v1",
            "load_scale": args.load_scale,
            "link": list(args.link),
            "reconvergence_delay": args.reconvergence,
            "policies": {
                name: {
                    "blocking": statistic_to_dict(r.blocking),
                    "drop_rate": statistic_to_dict(r.drop_rate),
                    "availability": statistic_to_dict(r.availability),
                    "time_to_recover": statistic_to_dict(r.time_to_recover),
                }
                for name, r in reports.items()
            },
        }, indent=2, sort_keys=True))
        return 0
    print(
        f"Dynamic failure: NSFNet x{args.load_scale:g}, link "
        f"{args.link[0]}<->{args.link[1]} fails mid-run, reconvergence "
        f"delay {args.reconvergence:g}"
    )
    print(
        format_table(
            ["policy", "blocking", "dropped", "availability", "t-recover"],
            [
                [name, r.blocking.mean, r.drop_rate.mean, r.availability.mean,
                 r.time_to_recover.mean]
                for name, r in reports.items()
            ],
        )
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments.registry import run_experiment, run_experiment_json

    try:
        if args.json:
            print(json.dumps(run_experiment_json(args.id, _config(args)),
                             indent=2, sort_keys=True))
        else:
            print(run_experiment(args.id, _config(args)))
    except KeyError as exc:
        # Unknown experiment id: a one-line error listing what exists,
        # never a traceback.
        raise SystemExit(f"experiment: {exc.args[0]}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from .experiments.registry import list_experiments

    print(list_experiments())
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    import numpy as np

    from .analysis.erlang_bound import erlang_bound
    from .experiments.report import format_table as fmt
    from .routing.alternate import (
        ControlledAlternateRouting,
        LengthAdaptiveControlledRouting,
        UncontrolledAlternateRouting,
    )
    from .routing.single_path import SinglePathRouting
    from .experiments.runner import compare_policies
    from .topology.io import load_network
    from .topology.paths import build_path_table
    from .traffic.demand import primary_link_loads
    from .traffic.io import load_traffic

    network = load_network(args.network)
    traffic = load_traffic(args.traffic)
    if traffic.num_nodes != network.num_nodes:
        raise SystemExit(
            f"traffic is for {traffic.num_nodes} nodes but the network has "
            f"{network.num_nodes}"
        )
    table = build_path_table(network, max_hops=args.hops)
    loads = primary_link_loads(network, table, traffic)
    policies = {
        "single-path": SinglePathRouting(network, table),
        "uncontrolled": UncontrolledAlternateRouting(network, table),
        "controlled": ControlledAlternateRouting(network, table, loads),
        "length-adaptive": LengthAdaptiveControlledRouting(network, table, loads),
    }
    stats = compare_policies(
        network, policies, traffic, _config(args), backend=args.backend
    )
    controlled = policies["controlled"]
    protected = int(np.count_nonzero(controlled.protection_levels))
    bound = (
        float(erlang_bound(network, traffic)) if network.num_nodes <= 16 else None
    )
    if args.json:
        from .experiments.storage import statistic_to_dict

        print(json.dumps({
            "schema": "repro-evaluate-v1",
            "network": {
                "num_nodes": network.num_nodes,
                "num_links": network.num_links,
                "offered_erlangs": traffic.total,
            },
            "policies": {
                name: statistic_to_dict(stat) for name, stat in stats.items()
            },
            "erlang_bound": bound,
            "protected_links": protected,
        }, indent=2, sort_keys=True))
        return 0
    print(
        f"{network.num_nodes} nodes, {network.num_links} directed links, "
        f"{traffic.total:.1f} Erlangs offered"
    )
    print(
        fmt(
            ["policy", "blocking", "ci"],
            [[name, stat.mean, stat.half_width] for name, stat in stats.items()],
        )
    )
    if bound is not None:
        print(f"Erlang cut-set lower bound: {bound:.6f}")
    print(f"protection: {protected}/{network.num_links} links with r > 0")
    return 0


def _positive_int(value: str) -> int:
    """Argparse type: a strictly positive integer (rejected at parse time)."""
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}")
    if parsed <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {parsed}")
    return parsed


def _parse_lab_traffic(value: str):
    """``nominal`` or a strictly positive per-pair Erlang value."""
    if value == "nominal":
        return value
    try:
        erlangs = float(value)
    except ValueError:
        raise SystemExit(
            f"lab: traffic must be 'nominal' or a per-pair Erlang value, "
            f"got {value!r}"
        ) from None
    if not erlangs > 0:
        raise SystemExit(
            f"lab: per-pair Erlang value must be positive, got {erlangs:g}"
        )
    return erlangs


def _lab_study_summary(study) -> dict:
    """JSON-ready summary of one finished lab study (deterministic values)."""
    return {
        "study": study.lab.study,
        "total_jobs": study.lab.total_jobs,
        "cache_hits": study.lab.cache_hits,
        "simulated": study.lab.simulated,
        "failed": study.lab.failed,
        "elapsed": study.lab.elapsed,
        "events": study.lab.events,
        "policies": {
            name: {
                "mean": outcome.stat.mean,
                "half_width": outcome.stat.half_width,
                "values": list(outcome.stat.values),
            }
            for name, outcome in study.outcomes.items()
        },
    }


def _run_lab_studies(studies, args, config=None) -> int:
    """Run ``(scenario, policies)`` studies through the lab; print/report."""
    from .api import LabConfig, run_study
    from .lab.scheduler import LabInterrupted

    lab = LabConfig(
        store=args.store, events=args.events, max_jobs=args.max_jobs
    )
    config = _config(args) if config is None else config
    summaries = []
    for scenario, policies in studies:
        try:
            study = run_study(
                scenario, policies=policies, config=config,
                parallel=args.workers != 0, max_workers=args.workers or None,
                lab=lab, backend=getattr(args, "backend", "auto"),
            )
        except LabInterrupted as exc:
            print(exc.report.describe(), file=sys.stderr)
            print(
                f"resume with: repro-routing lab resume --store {args.store}",
                file=sys.stderr,
            )
            return 3
        summaries.append(_lab_study_summary(study))
    if args.json:
        print(json.dumps(
            {"schema": "repro-lab-run-v1", "studies": summaries},
            indent=2, sort_keys=True,
        ))
        return 0
    from .experiments.report import format_table

    for summary in summaries:
        print(
            f"study {summary['study']}: {summary['total_jobs']} jobs, "
            f"{summary['cache_hits']} cache hits, "
            f"{summary['simulated']} simulated in {summary['elapsed']:.2f}s"
        )
        print(format_table(
            ["policy", "blocking", "ci"],
            [[name, data["mean"], data["half_width"]]
             for name, data in summary["policies"].items()],
        ))
        if summary["events"]:
            print(f"telemetry: {summary['events']}")
    return 0


def _cmd_lab_run(args: argparse.Namespace) -> int:
    from .api import Scenario

    if args.experiment:
        from .experiments.registry import experiment_job_graph

        try:
            studies = experiment_job_graph(args.experiment)
        except (KeyError, ValueError) as exc:
            message = exc.args[0] if exc.args else str(exc)
            raise SystemExit(f"lab run: {message}")
        return _run_lab_studies(studies, args)
    scenario = Scenario(
        topology=args.topology,
        traffic=_parse_lab_traffic(args.traffic),
        policy=args.policies[0],
        max_hops=args.hops,
        load_scale=args.load_scale,
    )
    return _run_lab_studies([(scenario, tuple(args.policies))], args)


def _latest_study(store) -> str | None:
    studies = store.list_studies()
    if not studies:
        return None
    return max(studies, key=lambda s: store.manifest_path(s).stat().st_mtime)


def _cmd_lab_resume(args: argparse.Namespace) -> int:
    from .experiments.runner import ReplicationConfig
    from .lab.scheduler import scenario_from_spec
    from .lab.store import ResultStore

    store = ResultStore(args.store)
    study = args.study or _latest_study(store)
    if study is None:
        raise SystemExit(f"lab resume: no studies recorded under {args.store}")
    manifest = store.load_manifest(study)
    if manifest is None:
        raise SystemExit(f"lab resume: unknown study {study!r} in {args.store}")
    try:
        scenario = scenario_from_spec(manifest["spec"])
    except ValueError as exc:
        raise SystemExit(f"lab resume: {exc}")
    raw = manifest["config"]
    # Replay the manifest's own replication window and seed roster;
    # different fidelity flags would change the job keys and therefore
    # start a different study instead of finishing this one.
    config = ReplicationConfig(
        measured_duration=float(raw["measured_duration"]),
        warmup=float(raw["warmup"]),
        seeds=tuple(int(s) for s in raw["seeds"]),
    )
    return _run_lab_studies(
        [(scenario, tuple(manifest["policies"]))], args, config=config
    )


def _lab_status_row(store, study: str) -> dict:
    """Progress summary of one study from its manifest (JSON-ready)."""
    manifest = store.load_manifest(study)
    if manifest is None:
        raise SystemExit(f"lab status: unknown study {study!r}")
    jobs = manifest.get("jobs", {})
    done = sum(1 for key in jobs if key in store)
    failed = sum(1 for entry in jobs.values() if entry.get("status") == "failed")
    state = "complete" if done == len(jobs) else ("failed" if failed else "partial")
    return {
        "study": study,
        "policies": list(manifest.get("policies", [])),
        "jobs": len(jobs),
        "done": done,
        "failed": failed,
        "state": state,
    }


def _lab_job_rows(store, manifest: dict) -> list[dict]:
    """Per-replication detail for one study, sorted by (policy, seed)."""
    rows = [
        {
            "policy": entry["policy"],
            "seed": entry["seed"],
            "status": "done" if key in store else entry.get("status", "pending"),
            "elapsed": entry.get("elapsed"),
        }
        for key, entry in manifest["jobs"].items()
    ]
    rows.sort(key=lambda row: (row["policy"], row["seed"]))
    return rows


def _cmd_lab_status(args: argparse.Namespace) -> int:
    from .experiments.report import format_table
    from .lab.store import ResultStore

    store = ResultStore(args.store)
    studies = [args.study] if args.study else store.list_studies()
    if not studies:
        if args.json:
            print(json.dumps(
                {"schema": "repro-lab-status-v1", "store": args.store,
                 "studies": []},
                indent=2, sort_keys=True,
            ))
        else:
            print(f"no studies recorded under {args.store}")
        return 0
    summaries = [_lab_status_row(store, study) for study in studies]
    if args.json:
        document = {
            "schema": "repro-lab-status-v1",
            "store": args.store,
            "studies": summaries,
        }
        if args.study:
            document["jobs"] = _lab_job_rows(store, store.load_manifest(args.study))
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    print(format_table(
        ["study", "policies", "jobs", "done", "failed", "state"],
        [[row["study"], ",".join(row["policies"]), row["jobs"], row["done"],
          row["failed"], row["state"]] for row in summaries],
    ))
    if args.study:
        detail = [
            [row["policy"], row["seed"], row["status"],
             f"{row['elapsed']:.3f}" if row["elapsed"] is not None else "-"]
            for row in _lab_job_rows(store, store.load_manifest(args.study))
        ]
        print(format_table(["policy", "seed", "status", "seconds"], detail))
    return 0


def _cmd_lab_ls(args: argparse.Namespace) -> int:
    from .lab.store import ResultStore

    stats = ResultStore(args.store).stats()
    if args.json:
        print(json.dumps(
            {
                "schema": "repro-lab-ls-v1",
                "root": str(stats["root"]),
                "objects": stats["objects"],
                "bytes": stats["bytes"],
                "studies": stats["studies"],
            },
            indent=2, sort_keys=True,
        ))
        return 0
    print(
        f"{stats['root']}: {stats['objects']} cached replications "
        f"({stats['bytes'] / 1024:.1f} KiB), {stats['studies']} studies"
    )
    return 0


def _cmd_lab_gc(args: argparse.Namespace) -> int:
    from .lab.store import ResultStore

    outcome = ResultStore(args.store).gc()
    print(
        f"removed {outcome['removed']} unreferenced replications, "
        f"kept {outcome['kept']}"
    )
    return 0


def _serve_pieces(args: argparse.Namespace):
    """(network, policy, scenario) for the serve group's scenario flags."""
    from .api import Scenario
    from .serve.state import _SUPPORTED_DISCIPLINES

    try:
        scenario = Scenario(
            topology=args.topology,
            traffic=_parse_lab_traffic(args.traffic),
            policy=args.policy,
            max_hops=args.hops,
            load_scale=args.load_scale,
            workload=getattr(args, "workload", None),
        )
        policy = scenario.build_policy()
    except ValueError as exc:
        raise SystemExit(f"serve: {exc}")
    # Checked here (not only in NetworkState) so `serve bench`, which builds
    # its own engines internally, fails with the same one-line message.
    if policy.discipline not in _SUPPORTED_DISCIPLINES:
        raise SystemExit(
            f"serve: supports disciplines {_SUPPORTED_DISCIPLINES}, got "
            f"{policy.discipline!r} (policy {policy.name!r})"
        )
    return scenario.network, policy, scenario


def _check_controller_flags(args: argparse.Namespace, prefix: str = "serve") -> None:
    """The no-op and conflicting ``--controller`` combinations, refused.

    A controller on a stationary workload can only re-derive the levels
    the deployment already runs (Equation 15 from the provisioned
    matrix), so the loop would burn cycles changing nothing; and the
    adaptation loop and the control loop are two writers to the same
    thresholds.  Both configurations die here with a one-line message
    instead of misbehaving quietly.
    """
    if getattr(args, "controller", None) is None:
        return
    if getattr(args, "workload", None) is None:
        raise SystemExit(
            f"{prefix}: --controller on the stationary workload is a no-op "
            "(the static Equation-15 thresholds are already provisioned for "
            "this matrix); pick --workload diurnal, flash-crowd, "
            "regional-surge or adversarial[:SEED], or drop --controller"
        )
    if getattr(args, "adapt_interval", None) is not None:
        raise SystemExit(
            f"{prefix}: --controller and --adapt-interval are two writers "
            "to the same live thresholds; run one or the other"
        )


def _serve_engine(args: argparse.Namespace, network, policy, scenario):
    """Build the request engine the serve subcommands share."""
    from .serve import (
        AdaptationConfig,
        BatchConfig,
        NetworkState,
        OverloadConfig,
        OverloadControl,
        RequestEngine,
    )

    _check_controller_flags(args)
    overload = None
    if args.rate is not None or args.queue_limit is not None:
        overload = OverloadControl(OverloadConfig(
            rate=float("inf") if args.rate is None else args.rate,
            burst=args.burst,
            alternate_reserve=args.reserve,
            queue_limit=4096 if args.queue_limit is None else args.queue_limit,
        ))
    adaptation = (
        None if args.adapt_interval is None
        else AdaptationConfig(update_interval=args.adapt_interval)
    )
    try:
        state = NetworkState(network, policy, adaptation=adaptation)
    except ValueError as exc:
        raise SystemExit(f"serve: {exc}")
    control = None
    if getattr(args, "controller", None) is not None:
        from .control import make_control_loop

        try:
            control = make_control_loop(
                state, scenario.path_table, scenario.traffic_matrix,
                controller=args.controller,
                interval=args.control_interval,
            )
        except ValueError as exc:
            raise SystemExit(f"serve: {exc}")
    engine = RequestEngine(
        network, policy, state=state, overload=overload, control=control,
        batch=BatchConfig(max_batch=args.batch, max_latency=args.max_latency),
    )
    if getattr(args, "events", None):
        from .lab.events import EventBus

        engine.telemetry.bind(EventBus(args.events))
    return engine


def _cmd_serve_run(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .serve import ServeServer

    network, policy, scenario = _serve_pieces(args)
    engine = _serve_engine(args, network, policy, scenario)

    async def serve() -> None:
        server = ServeServer(
            engine, host=args.host, port=args.port,
            publish_interval=args.publish_every,
            read_timeout=args.read_timeout if args.read_timeout > 0 else None,
            max_line_bytes=args.max_line_bytes,
        )
        host, port = await server.start()
        print(
            f"serving {scenario.topology}/{args.policy} on {host}:{port} "
            f"(batch {engine.batch.max_batch}, JSON lines; "
            "SIGINT/SIGTERM to drain)"
        )
        # A signal flips this event; the server then drains — queued
        # requests are flushed and answered, the final telemetry phases
        # (drain, shutdown) are published — and the process exits 0.
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed: list[signal.Signals] = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX loop
                continue
            installed.append(signum)
        try:
            await stop.wait()
            print("signal received: draining")
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await server.stop()
            print(
                f"drained: {engine.decisions_total} decisions, "
                f"{len(engine.held)} calls still held"
            )

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:  # pragma: no cover - loop without signal handlers
        pass
    finally:
        bus = engine.telemetry.bus
        if bus is not None:
            bus.close()
    return 0


def _cmd_serve_replay(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import ServeServer, replay_trace, replay_trace_socket

    network, policy, scenario = _serve_pieces(args)
    engine = _serve_engine(args, network, policy, scenario)
    try:
        trace = scenario.make_trace(args.duration + args.warmup, args.seed)
    except ValueError as exc:
        raise SystemExit(f"serve: {exc}")
    if args.socket:
        async def run():
            async with ServeServer(engine) as server:
                return await replay_trace_socket(
                    server.host, server.port, trace,
                    warmup=args.warmup, speedup=args.speedup,
                )
        report = asyncio.run(run())
    else:
        report = replay_trace(
            engine, trace, warmup=args.warmup, speedup=args.speedup
        )
    result = report.result
    verified = None
    if (
        engine.overload is None
        and engine.state.adaptation is None
        and engine.control is None
    ):
        from .sim.simulator import simulate

        reference = simulate(network, policy, trace, warmup=args.warmup)
        verified = (
            np.array_equal(result.offered, reference.offered)
            and np.array_equal(result.blocked, reference.blocked)
            and result.primary_carried == reference.primary_carried
            and result.alternate_carried == reference.alternate_carried
        )
    bus = engine.telemetry.bus
    if bus is not None:
        engine.publish_metrics(phase="replay")
        bus.close()
    adaptive = engine.state.adaptation is not None
    control = engine.control
    if args.json:
        print(json.dumps({
            "schema": "repro-serve-replay-v1",
            "transport": "socket" if args.socket else "in-process",
            "workload": getattr(args, "workload", None),
            "calls": len(trace.times),
            "requests": report.requests,
            "network_blocking": result.network_blocking,
            "alternate_fraction": result.alternate_fraction,
            "decisions_per_second": report.decisions_per_second,
            "wall_seconds": report.wall_seconds,
            "threshold_recomputes": (
                engine.state.recompute_count if adaptive else None
            ),
            "last_refresh_delta": (
                engine.state.last_refresh_delta if adaptive else None
            ),
            # The policy version that made the tail of these decisions:
            # regime-shift plots align on this, and the swap trail says
            # exactly when each earlier epoch was in force.
            "policy_epoch": engine.state.policy_epoch,
            "controller": getattr(args, "controller", None),
            "control": None if control is None else {
                "steps": len(control.steps),
                "swaps": sum(1 for s in control.steps if s.applied),
                "clamp_violations": control.clamp.violations,
                "decisions_sha256": control.decisions_sha256(),
                "objective": (
                    control.steps[-1].objective if control.steps else None
                ),
            },
            "swap_events": [
                {"time": swap.time, "epoch": swap.epoch,
                 "max_delta": swap.max_delta}
                for swap in engine.state.swaps
            ],
            "simulator_equivalent": verified,
        }, indent=2, sort_keys=True))
        return 0 if verified in (None, True) else 4
    transport = "socket" if args.socket else "in-process"
    print(
        f"replayed {len(trace.times)} calls ({report.requests} requests) "
        f"{transport} at {report.decisions_per_second:,.0f} decisions/sec"
    )
    print(
        f"blocking {result.network_blocking:.4f}, "
        f"alternate fraction {result.alternate_fraction:.4f}"
    )
    if adaptive:
        print(
            f"threshold recomputes {engine.state.recompute_count}, "
            f"last max |delta r| {engine.state.last_refresh_delta:g}"
        )
    if control is not None:
        swaps = sum(1 for s in control.steps if s.applied)
        print(
            f"controller {args.controller}: {len(control.steps)} steps, "
            f"{swaps} swaps, policy epoch {engine.state.policy_epoch}, "
            f"{control.clamp.violations} clamp violations"
        )
        print(f"control decisions sha256 {control.decisions_sha256()}")
    if verified is not None:
        print(
            "simulator equivalence: "
            + ("decisions match bit for bit" if verified else "MISMATCH")
        )
        if not verified:
            return 4
    else:
        print(
            "simulator equivalence: skipped "
            "(overload/adaptation/controller active)"
        )
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from .serve.loadgen import measure_overload, measure_throughput

    network, policy, scenario = _serve_pieces(args)
    try:
        trace = scenario.make_trace(args.duration + 10.0, args.seed)
    except ValueError as exc:
        raise SystemExit(f"serve: {exc}")
    throughput = measure_throughput(
        network, policy, trace, batch_size=args.batch, rounds=args.rounds
    )
    overload = measure_overload(
        network, policy, trace, overload_factor=args.overload_factor
    )
    if args.json:
        print(json.dumps({
            "schema": "repro-serve-bench-v1",
            "throughput": throughput,
            "overload": overload,
        }, indent=2, sort_keys=True))
        return 0
    print(
        f"serial  : {throughput['serial_decisions_per_sec']:,.0f} decisions/sec"
    )
    print(
        f"batched : {throughput['batched_decisions_per_sec']:,.0f} decisions/sec "
        f"(batch {throughput['batch_size']}, {throughput['speedup']:.2f}x, "
        "identical decisions)"
    )
    print(
        f"overload x{overload['overload_factor']:g}: shed "
        f"{overload['shed_fraction']:.1%} of queries, "
        f"{overload['mode_transitions']} mode transitions, "
        f"final mode {overload['final_mode']}, "
        f"decision p99 {overload['decision_p99_seconds'] * 1e6:.1f}us"
    )
    return 0


def _cmd_serve_cluster(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import ClusterConfig, ClusterRouter, replay_trace, replay_trace_cluster
    from .serve.engine import RequestEngine

    network, policy, scenario = _serve_pieces(args)
    try:
        trace = scenario.make_trace(args.duration + args.warmup, args.seed)
    except ValueError as exc:
        raise SystemExit(f"serve cluster: {exc}")
    try:
        config = ClusterConfig(
            num_shards=args.shards,
            mode=args.mode,
            journal_path=args.journal,
        )
        router = ClusterRouter(network, policy, config)
    except ValueError as exc:
        raise SystemExit(f"serve cluster: {exc}")

    async def run():
        async with router:
            report = await replay_trace_cluster(
                router, trace, warmup=args.warmup, batch_size=args.batch
            )
            audit = await router.audit()
            status = router.shard_status()
        return report, audit, status

    report, audit, status = asyncio.run(run())
    result = report.result
    verified = None
    if args.mode == "ordered":
        # Ordered mode promises bit-equivalence with the single-process
        # engine; pipelined mode reorders concurrent batches, so there is
        # no oracle to check against.
        reference = replay_trace(
            RequestEngine(network, policy), trace, warmup=args.warmup
        )
        verified = report.decisions == reference.decisions
    clean = bool(audit["consistent"]) and not audit["leaked_circuits"]
    if args.json:
        print(json.dumps({
            "schema": "repro-serve-cluster-v1",
            "num_shards": args.shards,
            "mode": args.mode,
            "calls": len(trace.times),
            "requests": report.requests,
            "network_blocking": result.network_blocking,
            "alternate_fraction": result.alternate_fraction,
            "decisions_per_second": report.decisions_per_second,
            "wall_seconds": report.wall_seconds,
            "engine_equivalent": verified,
            "audit": audit,
            "shards": status,
        }, indent=2, sort_keys=True))
        return 0 if verified in (None, True) and clean else 4
    print(
        f"replayed {len(trace.times)} calls ({report.requests} requests) "
        f"across {args.shards} {args.mode} shards at "
        f"{report.decisions_per_second:,.0f} decisions/sec"
    )
    print(
        f"blocking {result.network_blocking:.4f}, "
        f"alternate fraction {result.alternate_fraction:.4f}"
    )
    print(
        f"audit: {'consistent' if audit['consistent'] else 'INCONSISTENT'}, "
        f"{audit['leaked_circuits']} leaked circuits, "
        f"{audit['held_calls']} calls still held"
    )
    if verified is not None:
        print(
            "engine equivalence: "
            + ("decisions match bit for bit" if verified else "MISMATCH")
        )
    else:
        print("engine equivalence: skipped (pipelined mode reorders batches)")
    if verified is False or not clean:
        return 4
    return 0


def _cmd_control_replay(args: argparse.Namespace) -> int:
    """One closed-loop replay, with the controller's step trajectory."""
    from .control import make_control_loop
    from .serve.engine import RequestEngine
    from .serve.loadgen import aggregate_decisions, trace_requests
    from .serve.state import NetworkState

    _check_controller_flags(args, prefix="control")
    network, policy, scenario = _serve_pieces(args)
    try:
        trace = scenario.make_trace(args.duration + args.warmup, args.seed)
        state = NetworkState(network, policy)
        loop = make_control_loop(
            state, scenario.path_table, scenario.traffic_matrix,
            controller=args.controller, interval=args.control_interval,
        )
    except ValueError as exc:
        raise SystemExit(f"control: {exc}")
    if args.pin_epoch is not None:
        loop.pin(args.pin_epoch)
    engine = RequestEngine(network, policy, state=state, control=loop)
    decisions = engine.decide_batch(trace_requests(trace))
    result = aggregate_decisions(trace, decisions, args.warmup)

    if args.json:
        print(json.dumps({
            "schema": "repro-control-replay-v1",
            "workload": args.workload,
            "controller": args.controller,
            "interval": args.control_interval,
            "pinned_epoch": loop.pinned_epoch,
            "calls": len(trace.times),
            "network_blocking": result.network_blocking,
            "alternate_fraction": result.alternate_fraction,
            "policy_epoch": state.policy_epoch,
            "clamp_violations": loop.clamp.violations,
            "decisions_sha256": loop.decisions_sha256(),
            "trajectory": loop.trajectory(),
        }, indent=2, sort_keys=True))
        return 0
    from .experiments.report import format_table

    print(
        f"controller {args.controller} on {args.workload}: "
        f"{len(loop.steps)} steps, policy epoch {state.policy_epoch}, "
        f"blocking {result.network_blocking:.4f}"
    )
    rows = [
        [f"{s.time:.1f}", s.epoch, "yes" if s.applied else "pinned",
         f"{s.objective:.4f}", f"{s.max_delta:g}", s.clamp_lifted,
         f"{s.confidence:.2f}", f"{s.volatility:.2f}"]
        for s in loop.steps
    ]
    print(format_table(
        ["time", "epoch", "applied", "objective", "max |dr|",
         "clamp lifted", "confidence", "volatility"],
        rows,
    ))
    print(
        f"clamp violations {loop.clamp.violations}, "
        f"decisions sha256 {loop.decisions_sha256()}"
    )
    return 0


def _cmd_control_study(args: argparse.Namespace) -> int:
    """EXP-CTL at chosen fidelity (the benchmark runs this committed)."""
    from .experiments.control import control_loop_study

    config = _config(args)
    try:
        study = control_loop_study(
            config=config, controller=args.controller,
            interval=args.control_interval,
        )
    except ValueError as exc:
        raise SystemExit(f"control: {exc}")
    if args.json:
        print(json.dumps(
            {"schema": "repro-control-study-v1", "study": study},
            indent=2, sort_keys=True,
        ))
        return 0
    from .experiments.report import format_table

    rows = [
        [spec, f"{doc['static_blocking']['mean']:.4f}",
         f"{doc['ewma_blocking']['mean']:.4f}",
         f"{doc['online_blocking']['mean']:.4f}",
         f"{doc['hindsight_blocking']['mean']:.4f}",
         "-" if doc["gap_closed"] is None else f"{doc['gap_closed']:.0%}",
         doc["clamp_violations"]]
        for spec, doc in study["workloads"].items()
    ]
    print(format_table(
        ["workload", "static B", "ewma B", "online B", "hindsight B",
         "gap closed", "clamp viol"],
        rows,
    ))
    print(
        f"stationary reference {study['stationary_blocking']['mean']:.4f} "
        f"network blocking"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .experiments.registry import run_all

    report = run_all(_config(args))
    if args.output:
        Path(args.output).write_text(report)
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-routing",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig2 = sub.add_parser("figure2", help="protection level vs load curves")
    fig2.add_argument("--step", type=int, default=10, help="print every STEP Erlangs")
    fig2.set_defaults(func=_cmd_figure2)

    tab1 = sub.add_parser("table1", help="NSFNet protection-level table")
    tab1.set_defaults(func=_cmd_table1)

    for name, func, help_text in (
        ("quadrangle", _cmd_quadrangle, "figures 3/4 blocking sweep"),
        ("nsfnet", _cmd_nsfnet, "figures 6/7 blocking sweep"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--seeds", type=int, default=10, help="replications per point")
        cmd.add_argument("--duration", type=float, default=100.0, help="measured time units")
        cmd.add_argument("--output", help="save the sweep as JSON to this path")
        if name == "nsfnet":
            cmd.add_argument("--hops", type=int, default=11, help="H, max alternate hops")
            cmd.add_argument("--ott-krishnan", action="store_true", help="include the shadow-price comparator")
        cmd.set_defaults(func=func)

    thm = sub.add_parser("theorem1", help="numeric Theorem-1 verification")
    thm.add_argument("--trials", type=int, default=10)
    thm.add_argument("--seed", type=int, default=0)
    thm.set_defaults(func=_cmd_theorem1)

    census = sub.add_parser("census", help="NSFNet alternate-path census by H")
    census.add_argument("--hops", type=int, nargs="+", default=[6, 9, 11])
    census.set_defaults(func=_cmd_census)

    bist = sub.add_parser("bistability", help="mean-field bistability analysis")
    bist.add_argument("--capacity", type=int, default=120)
    bist.add_argument("--attempts", type=int, default=5)
    bist.add_argument(
        "--loads", type=float, nargs="+", default=[90.0, 96.0, 100.0, 104.0, 108.0]
    )
    bist.set_defaults(func=_cmd_bistability)

    dynfail = sub.add_parser(
        "dynamic-failures", help="mid-run link failure, drops and recovery"
    )
    dynfail.add_argument("--seeds", type=int, default=10)
    dynfail.add_argument("--duration", type=float, default=100.0)
    dynfail.add_argument("--load-scale", type=float, default=1.2)
    dynfail.add_argument(
        "--link", type=int, nargs=2, default=[2, 3], metavar=("A", "B"),
        help="duplex link to fail (node pair)",
    )
    dynfail.add_argument(
        "--reconvergence", type=float, default=2.0,
        help="delay before policies rebuild after a topology change",
    )
    dynfail.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    dynfail.set_defaults(func=_cmd_dynamic_failures)

    exp = sub.add_parser("experiment", help="regenerate one registered experiment")
    exp.add_argument("id", help="experiment id from DESIGN.md (e.g. FIG3, TAB1)")
    exp.add_argument("--seeds", type=int, default=10)
    exp.add_argument("--duration", type=float, default=100.0)
    exp.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    exp.set_defaults(func=_cmd_experiment)

    lister = sub.add_parser("list", help="list registered experiments")
    lister.set_defaults(func=_cmd_list)

    evaluate = sub.add_parser(
        "evaluate", help="run the routing schemes on your own network + traffic"
    )
    evaluate.add_argument("--network", required=True, help="network JSON file")
    evaluate.add_argument("--traffic", required=True, help="traffic JSON file")
    evaluate.add_argument("--hops", type=int, default=None, help="alternate hop cap H")
    evaluate.add_argument("--seeds", type=int, default=10)
    evaluate.add_argument("--duration", type=float, default=100.0)
    evaluate.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    evaluate.add_argument("--backend", choices=["auto", "batch", "fast", "reference"],
                          default="auto",
                          help="simulation engine (all are bit-identical; "
                               "auto batches the seeds when possible)")
    evaluate.set_defaults(func=_cmd_evaluate)

    report = sub.add_parser("report", help="regenerate every experiment into one report")
    report.add_argument("--seeds", type=int, default=10)
    report.add_argument("--duration", type=float, default=100.0)
    report.add_argument("--output", help="write the markdown report here")
    report.set_defaults(func=_cmd_report)

    lab = sub.add_parser(
        "lab", help="content-addressed study orchestration (cached, resumable)"
    )
    lab_sub = lab.add_subparsers(dest="lab_command", required=True)

    run = lab_sub.add_parser("run", help="run a study through the result store")
    run.add_argument("--topology", default="nsfnet",
                     help="nsfnet or quadrangle (default nsfnet)")
    run.add_argument("--traffic", default="nominal",
                     help="'nominal' or a per-pair Erlang value")
    run.add_argument("--policies", nargs="+", default=["controlled"],
                     help="routing policies to study on common random numbers")
    run.add_argument("--load-scale", type=float, default=1.0)
    run.add_argument("--hops", type=int, default=None, help="alternate hop cap H")
    run.add_argument("--experiment", default=None,
                     help="run a registered experiment's lab job graph instead")
    run.add_argument("--seeds", type=_positive_int, default=10)
    run.add_argument("--duration", type=float, default=100.0)
    run.add_argument("--backend", choices=["auto", "batch", "fast", "reference"],
                     default="auto",
                     help="simulation engine (all are bit-identical; "
                          "auto batches each policy's seeds when possible)")
    run.set_defaults(func=_cmd_lab_run)

    resume = lab_sub.add_parser(
        "resume", help="finish an interrupted study from its manifest"
    )
    resume.add_argument("--study", default=None,
                        help="study key (default: most recent manifest)")
    resume.set_defaults(func=_cmd_lab_resume)

    for cmd in (run, resume):
        cmd.add_argument("--store", default=".repro-lab",
                         help="result-store root (default .repro-lab)")
        cmd.add_argument("--events", default=None,
                         help="JSONL telemetry path (default: inside the store)")
        cmd.add_argument("--workers", type=int, default=0,
                         help="process-pool size; 0 (default) runs in-process")
        cmd.add_argument("--max-jobs", type=int, default=None,
                         help="simulate at most N jobs, then checkpoint and stop")
        cmd.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON")

    status = lab_sub.add_parser("status", help="per-study progress from manifests")
    status.add_argument("--study", default=None, help="detail one study")
    status.set_defaults(func=_cmd_lab_status)

    ls = lab_sub.add_parser("ls", help="store contents summary")
    ls.set_defaults(func=_cmd_lab_ls)

    gc = lab_sub.add_parser("gc", help="drop replications no manifest references")
    gc.set_defaults(func=_cmd_lab_gc)

    for cmd in (status, ls, gc):
        cmd.add_argument("--store", default=".repro-lab",
                         help="result-store root (default .repro-lab)")
    for cmd in (status, ls):
        cmd.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON")

    serve = sub.add_parser(
        "serve", help="online admission-control service (repro.serve)"
    )
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)

    serve_run = serve_sub.add_parser(
        "run", help="serve admission decisions over a JSON-lines socket"
    )
    serve_run.add_argument("--host", default="127.0.0.1")
    serve_run.add_argument("--port", type=int, default=7411)
    serve_run.add_argument("--publish-every", type=float, default=None,
                           help="telemetry snapshot period in seconds")
    serve_run.add_argument("--read-timeout", type=float, default=30.0,
                           help="disconnect a connection idle this many "
                                "seconds (0 disables)")
    serve_run.add_argument("--max-line-bytes", type=_positive_int,
                           default=1 << 16,
                           help="disconnect on request lines longer than this")
    serve_run.set_defaults(func=_cmd_serve_run)

    serve_replay = serve_sub.add_parser(
        "replay", help="replay a generated trace; verify against the simulator"
    )
    serve_replay.add_argument("--duration", type=float, default=60.0,
                              help="measured trace time units")
    serve_replay.add_argument("--warmup", type=float, default=10.0)
    serve_replay.add_argument("--seed", type=int, default=0)
    serve_replay.add_argument("--socket", action="store_true",
                              help="replay through the socket server, not in-process")
    serve_replay.add_argument("--speedup", type=float, default=None,
                              help="pace replay: trace units per wall second")
    serve_replay.add_argument("--json", action="store_true",
                              help="emit machine-readable JSON")
    serve_replay.set_defaults(func=_cmd_serve_replay)

    serve_bench = serve_sub.add_parser(
        "bench", help="serial-vs-batched throughput and overload behaviour"
    )
    serve_bench.add_argument("--duration", type=float, default=40.0)
    serve_bench.add_argument("--seed", type=int, default=0)
    serve_bench.add_argument("--rounds", type=_positive_int, default=3)
    serve_bench.add_argument("--overload-factor", type=float, default=2.0,
                             help="offered-rate multiple of the token rate")
    serve_bench.add_argument("--json", action="store_true",
                             help="emit machine-readable JSON")
    serve_bench.set_defaults(func=_cmd_serve_bench)

    serve_cluster = serve_sub.add_parser(
        "cluster",
        help="replay a trace through the sharded cluster; audit + verify",
    )
    serve_cluster.add_argument("--shards", type=_positive_int, default=4,
                               help="shard worker processes")
    serve_cluster.add_argument("--mode", choices=("ordered", "pipelined"),
                               default="ordered",
                               help="ordered is engine-bit-identical; "
                                    "pipelined overlaps waves for throughput")
    serve_cluster.add_argument("--duration", type=float, default=20.0,
                               help="measured trace time units")
    serve_cluster.add_argument("--warmup", type=float, default=5.0)
    serve_cluster.add_argument("--seed", type=int, default=0)
    serve_cluster.add_argument("--journal", default=None,
                               help="mirror the reservation journal to this "
                                    "JSONL path")
    serve_cluster.add_argument("--json", action="store_true",
                               help="emit machine-readable JSON")
    serve_cluster.set_defaults(func=_cmd_serve_cluster)

    for cmd in (serve_run, serve_replay, serve_bench, serve_cluster):
        cmd.add_argument("--topology", default="nsfnet",
                         help="nsfnet or quadrangle (default nsfnet)")
        cmd.add_argument("--traffic", default="nominal",
                         help="'nominal' or a per-pair Erlang value")
        cmd.add_argument("--policy", default="controlled",
                         help="routing policy to serve (threshold family)")
        cmd.add_argument("--load-scale", type=float, default=1.0)
        cmd.add_argument("--hops", type=int, default=None,
                         help="alternate hop cap H")
        cmd.add_argument("--batch", type=_positive_int, default=64,
                         help="micro-batch size (max_batch)")
        cmd.add_argument("--max-latency", type=float, default=0.002,
                         help="micro-batch flush deadline in seconds")
        cmd.add_argument("--rate", type=float, default=None,
                         help="token-bucket admission-query rate (enables shedding)")
        cmd.add_argument("--burst", type=float, default=256.0)
        cmd.add_argument("--reserve", type=float, default=0.25,
                         help="burst fraction reserved for primary-only service")
        cmd.add_argument("--queue-limit", type=int, default=None,
                         help="hard queue bound (enables queue shedding)")
        cmd.add_argument("--adapt-interval", type=float, default=None,
                         help="enable online threshold adaptation, this often")
        cmd.add_argument("--workload", default=None,
                         help="time-varying workload spec: diurnal, "
                              "flash-crowd, regional-surge, adversarial[:SEED]"
                              " (default stationary)")
        cmd.add_argument("--events", default=None,
                         help="JSONL telemetry path (serve_metrics events)")
    for cmd in (serve_run, serve_replay):
        cmd.add_argument("--controller", choices=("gradient", "markov"),
                         default=None,
                         help="close the online protection-level control "
                              "loop (repro.control); needs a non-stationary "
                              "--workload")
        cmd.add_argument("--control-interval", type=float, default=5.0,
                         help="controller re-optimization window in trace "
                              "time units")

    control = sub.add_parser(
        "control",
        help="online protection-level optimizer (repro.control)",
    )
    control_sub = control.add_subparsers(dest="control_command", required=True)

    control_replay = control_sub.add_parser(
        "replay",
        help="closed-loop trace replay with the controller's step trajectory",
    )
    control_replay.add_argument("--duration", type=float, default=60.0,
                                help="measured trace time units")
    control_replay.add_argument("--warmup", type=float, default=10.0)
    control_replay.add_argument("--seed", type=int, default=0)
    control_replay.add_argument("--pin-epoch", type=int, default=None,
                                help="freeze swaps at this policy epoch "
                                     "(rollback drill: proposals are "
                                     "recorded but not applied)")
    control_replay.add_argument("--topology", default="nsfnet",
                                help="nsfnet or quadrangle (default nsfnet)")
    control_replay.add_argument("--traffic", default="nominal",
                                help="'nominal' or a per-pair Erlang value")
    control_replay.add_argument("--policy", default="length-adaptive",
                                help="threshold-family policy to control "
                                     "(default length-adaptive)")
    control_replay.add_argument("--load-scale", type=float, default=1.1)
    control_replay.add_argument("--hops", type=int, default=6,
                                help="alternate hop cap H")
    control_replay.add_argument("--workload", default=None,
                                help="time-varying workload spec: diurnal, "
                                     "flash-crowd, regional-surge, "
                                     "adversarial[:SEED] (required: the "
                                     "controller is a no-op on stationary)")
    control_replay.add_argument("--json", action="store_true",
                                help="emit machine-readable JSON")
    control_replay.set_defaults(func=_cmd_control_replay)

    control_study = control_sub.add_parser(
        "study",
        help="EXP-CTL: static vs EWMA vs online control across workloads",
    )
    control_study.add_argument("--seeds", type=int, default=10)
    control_study.add_argument("--duration", type=float, default=100.0)
    control_study.add_argument("--json", action="store_true",
                               help="emit machine-readable JSON")
    control_study.set_defaults(func=_cmd_control_study)

    for cmd in (control_replay, control_study):
        cmd.add_argument("--controller", choices=("gradient", "markov"),
                         default="gradient")
        cmd.add_argument("--control-interval", type=float, default=5.0,
                         help="controller re-optimization window in trace "
                              "time units")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
