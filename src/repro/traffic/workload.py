"""Adversarial and time-varying workloads: per-O-D-pair demand over time.

Everything the repo measured before this module ran *stationary* Poisson
demand — exactly the regime the paper's Theorem-1 guarantee is stated for.
This module supplies the workloads that guarantee says nothing about: a
:class:`Workload` maps every O-D pair to its own piecewise-constant
:class:`~repro.traffic.profiles.LoadProfile` (not just a global scalar),
with constructors for the regime shifts that stress alternate routing in
practice:

* :func:`diurnal` — anti-phased day/night cycles across node regions, the
  slow shift the deployment story (links re-estimating demand, Equation-15
  recompute) is built for;
* :func:`flash_crowd` — a ramped surge into one hotspot node that arrives,
  peaks, and clears (the Olesker-Taylor metastability shape: a transient
  that can kick the network into the bad all-alternate mode);
* :func:`regional_surge` — a block of nodes overloads together, modelling
  a failover or a correlated regional event;
* :func:`adversarial_workload` — an injector in the spirit of Andrews et
  al.'s adversarial source model: each epoch it concentrates demand on the
  O-D pairs whose alternate routes overlap the most with everyone else's,
  rotating targets between epochs so freshly recomputed thresholds are
  wrong again — the worst case for crankback and alternate churn.  The
  schedule is a pure function of ``seed``: every adversarial run is
  replayable bit for bit.

Workloads **compose**: :meth:`Workload.overlay` multiplies profiles
pointwise, so ``diurnal(...).overlay(flash_crowd(...))`` is the obvious
thing.  :func:`generate_workload_trace` realizes a workload as a standard
:class:`~repro.sim.trace.ArrivalTrace` — per-pair thinning on per-pair
named substreams, so changing one pair's profile never perturbs another
pair's arrivals — which then flows unchanged through the simulators, the
serving plane, and the cluster.

String specs (``"flash-crowd"``, ``"adversarial:7"``) name preset
workloads for the CLI and :class:`repro.api.Scenario`;
:func:`build_workload` resolves them against a concrete network/traffic
and rejects unknown names or malformed seeds with a listing of what it
knows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from ..sim.rng import substream
from ..sim.trace import ArrivalTrace
from .matrix import TrafficMatrix
from .profiles import LoadProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..topology.graph import Network
    from ..topology.paths import PathTable

__all__ = [
    "Workload",
    "WORKLOAD_NAMES",
    "diurnal",
    "flash_crowd",
    "regional_surge",
    "adversarial_workload",
    "alternate_overlap_scores",
    "build_workload",
    "parse_workload_spec",
    "generate_workload_trace",
]

OD = tuple[int, int]


@dataclass(frozen=True)
class Workload:
    """Per-O-D-pair load profiles under one name.

    ``profiles`` holds the pairs that deviate from ``default`` (sorted by
    O-D pair, which keeps the content signature canonical).  A pair absent
    from ``profiles`` follows ``default``.
    """

    name: str
    profiles: tuple[tuple[OD, LoadProfile], ...] = ()
    default: LoadProfile = LoadProfile.constant(1.0)

    def __post_init__(self):
        if not self.name:
            raise ValueError("workload needs a name")
        pairs = [od for od, __ in self.profiles]
        if len(set(pairs)) != len(pairs):
            raise ValueError("duplicate O-D pair in workload profiles")
        if list(pairs) != sorted(pairs):
            object.__setattr__(
                self, "profiles", tuple(sorted(self.profiles, key=lambda e: e[0]))
            )

    def profile_for(self, od: OD) -> LoadProfile:
        """The profile one O-D pair follows."""
        for pair, profile in self.profiles:
            if pair == od:
                return profile
        return self.default

    def scale_at(self, od: OD, time: float) -> float:
        """The demand multiplier for ``od`` in force at ``time``."""
        return self.profile_for(od).scale_at(time)

    @property
    def shift_time(self) -> float | None:
        """Earliest time any pair's rate changes (``None`` if stationary)."""
        times = [
            profile.breakpoints[0]
            for __, profile in self.profiles
            if profile.breakpoints
        ]
        if self.default.breakpoints:
            times.append(self.default.breakpoints[0])
        return min(times) if times else None

    def overlay(self, other: "Workload") -> "Workload":
        """Compose two workloads by multiplying their profiles pointwise."""
        pairs = {od for od, __ in self.profiles} | {od for od, __ in other.profiles}
        return Workload(
            name=f"{self.name}+{other.name}",
            profiles=tuple(
                (od, self.profile_for(od).multiply(other.profile_for(od)))
                for od in sorted(pairs)
            ),
            default=self.default.multiply(other.default),
        )

    def signature(self) -> dict:
        """JSON-stable content description (feeds the lab's cache keys)."""

        def profile_sig(profile: LoadProfile) -> dict:
            return {
                "breakpoints": [float(b) for b in profile.breakpoints],
                "scales": [float(s) for s in profile.scales],
            }

        return {
            "name": self.name,
            "default": profile_sig(self.default),
            "profiles": [
                [list(od), profile_sig(profile)] for od, profile in self.profiles
            ],
        }


# --------------------------------------------------------------- constructors


def _node_pairs(num_nodes: int) -> list[OD]:
    return [
        (i, j) for i in range(num_nodes) for j in range(num_nodes) if i != j
    ]


def diurnal(
    num_nodes: int,
    horizon: float,
    *,
    period: float = 40.0,
    peak: float = 1.3,
    trough: float = 0.7,
    regions: int = 2,
) -> Workload:
    """Anti-phased day/night demand across ``regions`` node blocks.

    Nodes are split into contiguous blocks; a pair follows its *source*
    node's region, and region ``k`` is phase-shifted by ``k/regions`` of a
    period — so when one region peaks another idles, continuously moving
    the per-link primary loads that Equation 15 was computed from.
    """
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    if period <= 0 or horizon <= 0:
        raise ValueError("period and horizon must be positive")
    if regions < 1 or regions > num_nodes:
        raise ValueError("regions must lie in [1, num_nodes]")
    half = period / 2.0
    region_profiles = []
    for region in range(regions):
        offset = period * region / regions
        breakpoints: list[float] = []
        scales: list[float] = []
        t = -offset
        high = True
        while t < horizon:
            if t <= 0:
                scales = [peak if high else trough]
            else:
                breakpoints.append(t)
                scales.append(peak if high else trough)
            high = not high
            t += half
        region_profiles.append(
            LoadProfile(tuple(breakpoints), tuple(scales[: len(breakpoints) + 1]))
        )
    profiles = tuple(
        (od, region_profiles[min(od[0] * regions // num_nodes, regions - 1)])
        for od in _node_pairs(num_nodes)
    )
    return Workload(name="diurnal", profiles=profiles,
                    default=LoadProfile.constant(1.0))


def flash_crowd(
    num_nodes: int,
    horizon: float,
    *,
    target: int = 0,
    start: float | None = None,
    ramp_steps: int = 3,
    ramp_length: float | None = None,
    peak_scale: float = 2.5,
    hold: float | None = None,
    background: float = 1.0,
) -> Workload:
    """A ramped surge of demand toward (and from) one hotspot node.

    Pairs touching ``target`` climb in ``ramp_steps`` equal steps from
    ``background`` to ``peak_scale`` starting at ``start``, hold the peak
    for ``hold`` time units, then fall straight back — the canonical
    flash-crowd shape.  All other pairs stay at ``background``.
    """
    if not 0 <= target < num_nodes:
        raise ValueError(f"target node {target} out of range")
    if peak_scale <= 0:
        raise ValueError("peak_scale must be positive")
    if ramp_steps < 1:
        raise ValueError("ramp_steps must be positive")
    start = 0.35 * horizon if start is None else start
    ramp_length = 0.1 * horizon if ramp_length is None else ramp_length
    hold = 0.25 * horizon if hold is None else hold
    if start < 0 or ramp_length <= 0 or hold <= 0:
        raise ValueError("start must be >= 0, ramp_length and hold positive")
    breakpoints = [start + ramp_length * k / ramp_steps for k in range(ramp_steps)]
    scales = [background] + [
        background + (peak_scale - background) * (k + 1) / ramp_steps
        for k in range(ramp_steps)
    ]
    breakpoints.append(start + ramp_length + hold)
    scales.append(background)
    surge = LoadProfile(tuple(breakpoints), tuple(scales))
    profiles = tuple(
        (od, surge)
        for od in _node_pairs(num_nodes)
        if target in od
    )
    return Workload(name="flash-crowd", profiles=profiles,
                    default=LoadProfile.constant(background))


def regional_surge(
    num_nodes: int,
    horizon: float,
    *,
    region: tuple[int, ...] | None = None,
    start: float | None = None,
    length: float | None = None,
    scale: float = 1.8,
    background: float = 1.0,
) -> Workload:
    """One block of nodes overloads together for a window, then recovers.

    Pairs whose *source* lies in ``region`` (default: the first half of the
    node ids) jump to ``scale`` on ``[start, start + length)`` — a
    correlated regional event, the shape to compose with a shard kill when
    measuring failure-under-overload.
    """
    region = tuple(range(num_nodes // 2)) if region is None else tuple(region)
    if not region or any(not 0 <= n < num_nodes for n in region):
        raise ValueError("region must be a non-empty tuple of valid node ids")
    start = 0.4 * horizon if start is None else start
    length = 0.3 * horizon if length is None else length
    pulse = LoadProfile.pulse(start, start + length, scale, base=background)
    members = set(region)
    profiles = tuple(
        (od, pulse) for od in _node_pairs(num_nodes) if od[0] in members
    )
    return Workload(name="regional-surge", profiles=profiles,
                    default=LoadProfile.constant(background))


def alternate_overlap_scores(
    network: "Network", table: "PathTable", traffic: TrafficMatrix
) -> dict[OD, float]:
    """How much each pair's alternate routes contend with everyone else's.

    For every link, count the positive-demand pairs whose alternate paths
    traverse it; a pair's score is the sum over its own alternate links of
    the *other* pairs sharing that link.  High-scoring pairs are the ones
    whose overflow sets off the widest crankback/alternate churn — the
    adversary's targets.
    """
    pairs = [od for od, __ in traffic.positive_pairs()]
    alt_links: dict[OD, set[int]] = {}
    users: dict[int, int] = {}
    for od in pairs:
        links: set[int] = set()
        for alt in table.alternates.get(od, ()):
            links.update(network.path_links(alt))
        alt_links[od] = links
        for link in links:
            users[link] = users.get(link, 0) + 1
    return {
        od: float(sum(users[link] - 1 for link in links))
        for od, links in alt_links.items()
    }


def adversarial_workload(
    network: "Network",
    table: "PathTable",
    traffic: TrafficMatrix,
    horizon: float,
    *,
    seed: int = 0,
    epochs: int | None = None,
    epoch_length: float | None = None,
    surge: float = 3.0,
    target_fraction: float = 0.15,
    conserve_mass: bool = True,
) -> Workload:
    """The Andrews-et-al.-spirit adversary, fixed by ``seed``.

    Demand is injected in epochs.  Each epoch the adversary surges the
    pairs whose alternate routes overlap the most
    (:func:`alternate_overlap_scores`), drawing its targets from the
    top-scoring pool with a seeded rotation that avoids the previous
    epoch's picks — so thresholds recomputed from the last epoch's
    observations are maximally wrong for the next.  With ``conserve_mass``
    the non-targeted pairs are scaled down so each epoch's total offered
    load equals the stationary total: the adversary redistributes demand
    rather than simply adding it, which keeps comparisons against the
    stationary Theorem-1 bound honest.

    The whole schedule — targets, epochs, scales — is a deterministic
    function of ``(network, table, traffic, horizon, seed, knobs)``.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if surge <= 1.0:
        raise ValueError("surge must exceed 1 (the adversary concentrates load)")
    if not 0.0 < target_fraction <= 0.5:
        raise ValueError("target_fraction must lie in (0, 0.5]")
    if epochs is None:
        epochs = 4 if epoch_length is None else max(1, int(horizon // epoch_length))
    if epochs < 1:
        raise ValueError("epochs must be positive")
    epoch_length = horizon / epochs if epoch_length is None else epoch_length

    scores = alternate_overlap_scores(network, table, traffic)
    pairs = sorted(scores, key=lambda od: (-scores[od], od))
    if not pairs:
        raise ValueError("traffic matrix has no positive demand to attack")
    demands = dict(traffic.positive_pairs())
    total = sum(demands.values())
    k = max(1, int(round(target_fraction * len(pairs))))
    pool = pairs[: min(len(pairs), 3 * k)]

    rng = substream(seed, "adversary", "targets")
    previous: set[OD] = set()
    epoch_targets: list[list[OD]] = []
    for __ in range(epochs):
        order = [pool[i] for i in rng.permutation(len(pool))]
        fresh = [od for od in order if od not in previous]
        picks = (fresh + [od for od in order if od in previous])[:k]
        epoch_targets.append(sorted(picks))
        previous = set(picks)

    # Per-pair scale sequence across epochs: surge when targeted; when mass
    # is conserved, everyone else absorbs the difference so the epoch total
    # matches the stationary total.
    scale_rows: dict[OD, list[float]] = {od: [] for od in pairs}
    for targets in epoch_targets:
        targeted = set(targets)
        surged_mass = sum(demands[od] for od in targeted) * surge
        rest_mass = total - sum(demands[od] for od in targeted)
        if conserve_mass and rest_mass > 0.0 and surged_mass < total:
            off_scale = (total - surged_mass) / rest_mass
        else:
            off_scale = 1.0
        for od in pairs:
            scale_rows[od].append(surge if od in targeted else off_scale)

    breakpoints = tuple(epoch_length * e for e in range(1, epochs))
    profiles = tuple(
        (od, LoadProfile(breakpoints, tuple(scale_rows[od])))
        for od in sorted(pairs)
    )
    return Workload(name=f"adversarial:{int(seed)}", profiles=profiles,
                    default=LoadProfile.constant(1.0))


# ------------------------------------------------------------- named presets

#: Workload spec names :func:`build_workload` understands.
WORKLOAD_NAMES = ("stationary", "diurnal", "flash-crowd", "regional-surge",
                  "adversarial")


def parse_workload_spec(spec: str) -> tuple[str, int]:
    """Split ``"name"`` / ``"name:seed"`` into a validated (name, seed).

    Unknown names and malformed seeds raise ``ValueError`` with the list of
    known workloads — the CLI shows this directly instead of a traceback.
    """
    name, sep, seed_text = spec.partition(":")
    seed = 0
    if sep:
        try:
            seed = int(seed_text)
        except ValueError:
            raise ValueError(
                f"workload seed {seed_text!r} in spec {spec!r} is not an "
                "integer; use e.g. 'adversarial:7'"
            ) from None
        if seed < 0:
            raise ValueError(f"workload seed must be non-negative, got {seed}")
    if name not in WORKLOAD_NAMES:
        known = ", ".join(WORKLOAD_NAMES)
        raise ValueError(f"unknown workload {name!r}; known workloads: {known}")
    return name, seed


def build_workload(
    spec: "str | Workload",
    *,
    network: "Network",
    table: "PathTable",
    traffic: TrafficMatrix,
    horizon: float,
) -> Workload | None:
    """Resolve a workload spec against a concrete scenario.

    A :class:`Workload` object passes through unchanged; a string names a
    preset, built for this network/traffic over ``[0, horizon)``.
    ``"stationary"`` resolves to ``None`` — the caller should fall back to
    the plain stationary generator, keeping traces bit-identical with the
    historical path.
    """
    if isinstance(spec, Workload):
        return spec
    name, seed = parse_workload_spec(spec)
    if name == "stationary":
        return None
    num_nodes = network.num_nodes
    if name == "diurnal":
        return diurnal(num_nodes, horizon, period=max(horizon / 2.0, 1e-9))
    if name == "flash-crowd":
        return flash_crowd(num_nodes, horizon)
    if name == "regional-surge":
        return regional_surge(num_nodes, horizon)
    return adversarial_workload(network, table, traffic, horizon, seed=seed)


# ------------------------------------------------------------ trace realizer


def generate_workload_trace(
    traffic: TrafficMatrix,
    workload: Workload,
    duration: float,
    seed: int,
) -> ArrivalTrace:
    """Realize a workload as a standard :class:`ArrivalTrace`.

    Each positive-demand pair is an independent nonstationary Poisson
    process (thinning at the pair's own peak rate) on its own named
    substream ``(seed, "workload", i, j)`` — so editing one pair's profile
    leaves every other pair's arrivals, holding times and routing uniforms
    bit-identical, and the whole trace is a pure function of
    ``(traffic, workload, duration, seed)``.  The merged trace is sorted by
    arrival time (stable in pair order) and plugs into the simulator, the
    serving plane, and the cluster unchanged.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    pairs: list[OD] = []
    segments: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
    for index, (od, demand) in enumerate(traffic.positive_pairs()):
        pairs.append(od)
        profile = workload.profile_for(od)
        peak = demand * profile.max_scale
        rng = substream(seed, "workload", od[0], od[1])
        if peak <= 0.0:
            continue
        count = int(rng.poisson(peak * duration))
        candidate_times = np.sort(rng.uniform(0.0, duration, size=count))
        acceptance = rng.uniform(0.0, 1.0, size=count)
        keep = acceptance * profile.max_scale < profile.scales_at(candidate_times)
        times = candidate_times[keep]
        kept = int(times.size)
        segments.append(
            (
                times,
                np.full(kept, index, dtype=np.int64),
                rng.exponential(1.0, size=kept),
                rng.uniform(0.0, 1.0, size=kept),
            )
        )
    if segments:
        times = np.concatenate([s[0] for s in segments])
        order = np.argsort(times, kind="stable")
        times = times[order]
        od_index = np.concatenate([s[1] for s in segments])[order]
        holding = np.concatenate([s[2] for s in segments])[order]
        uniforms = np.concatenate([s[3] for s in segments])[order]
    else:
        times = np.empty(0)
        od_index = np.empty(0, dtype=np.int64)
        holding = np.empty(0)
        uniforms = np.empty(0)
    return ArrivalTrace(
        od_pairs=tuple(pairs),
        times=times,
        od_index=od_index,
        holding_times=holding,
        uniforms=uniforms,
        duration=float(duration),
        seed=seed,
    )
