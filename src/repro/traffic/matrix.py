"""Traffic matrices.

The paper's demand model is a square matrix ``T`` of size ``N`` where
``T(i, j)`` is the offered traffic, in Erlangs, of calls originating at node
``i`` destined for node ``j`` (holding times are unit mean, so Erlangs and
call-arrival rate coincide).  Load sweeps scale the nominal matrix linearly
(Section 4.2.2: "the T's used for the other loads were got by linearly
scaling the T corresponding to the nominal load").
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

__all__ = ["TrafficMatrix"]


class TrafficMatrix:
    """An ``N x N`` non-negative demand matrix with a zero diagonal."""

    def __init__(self, demands: np.ndarray | Mapping[tuple[int, int], float], num_nodes: int | None = None):
        if isinstance(demands, Mapping):
            if num_nodes is None:
                if not demands:
                    raise ValueError("num_nodes required for an empty demand mapping")
                num_nodes = 1 + max(max(i, j) for i, j in demands)
            matrix = np.zeros((num_nodes, num_nodes), dtype=float)
            for (i, j), value in demands.items():
                matrix[i, j] = value
        else:
            matrix = np.array(demands, dtype=float)
            if num_nodes is not None and matrix.shape != (num_nodes, num_nodes):
                raise ValueError(
                    f"matrix shape {matrix.shape} does not match num_nodes={num_nodes}"
                )
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"traffic matrix must be square, got shape {matrix.shape}")
        if (matrix < 0).any():
            raise ValueError("traffic demands must be non-negative")
        if np.diag(matrix).any():
            raise ValueError("traffic matrix diagonal must be zero (no self-traffic)")
        self._matrix = matrix

    # -------------------------------------------------------------- accessors

    @property
    def num_nodes(self) -> int:
        return self._matrix.shape[0]

    def demand(self, origin: int, destination: int) -> float:
        """``T(i, j)`` in Erlangs."""
        return float(self._matrix[origin, destination])

    def __getitem__(self, od: tuple[int, int]) -> float:
        return self.demand(*od)

    def as_array(self) -> np.ndarray:
        """A defensive copy of the underlying array."""
        return self._matrix.copy()

    @property
    def total(self) -> float:
        """Total offered traffic over all O-D pairs, in Erlangs."""
        return float(self._matrix.sum())

    def positive_pairs(self) -> Iterator[tuple[tuple[int, int], float]]:
        """Yield ``((i, j), T(i, j))`` for every pair with positive demand."""
        rows, cols = np.nonzero(self._matrix)
        for i, j in zip(rows.tolist(), cols.tolist()):
            yield (i, j), float(self._matrix[i, j])

    # ------------------------------------------------------------- operations

    def scaled(self, factor: float) -> "TrafficMatrix":
        """A new matrix with every demand multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return TrafficMatrix(self._matrix * factor)

    def __mul__(self, factor: float) -> "TrafficMatrix":
        return self.scaled(factor)

    __rmul__ = __mul__

    def rounded(self) -> np.ndarray:
        """Demands rounded to nearest integer (how the paper prints T)."""
        return np.rint(self._matrix).astype(int)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TrafficMatrix):
            return NotImplemented
        return np.array_equal(self._matrix, other._matrix)

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("TrafficMatrix is mutable-array-backed and unhashable")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TrafficMatrix(num_nodes={self.num_nodes}, total={self.total:.1f} Erlangs)"
