"""JSON serialization for demand matrices.

The document lists the positive O-D demands (Erlangs)::

    {
      "num_nodes": 3,
      "demands": [[0, 1, 12.5], [1, 0, 8.0], [2, 0, 3.0]]
    }
"""

from __future__ import annotations

import json
from pathlib import Path

from .matrix import TrafficMatrix

__all__ = ["traffic_to_dict", "traffic_from_dict", "save_traffic", "load_traffic"]


def traffic_to_dict(traffic: TrafficMatrix) -> dict:
    """Serializable representation: sparse list of positive demands."""
    return {
        "num_nodes": traffic.num_nodes,
        "demands": [
            [od[0], od[1], demand] for od, demand in traffic.positive_pairs()
        ],
    }


def traffic_from_dict(document: dict) -> TrafficMatrix:
    """Build a :class:`TrafficMatrix` from the JSON structure above."""
    try:
        num_nodes = int(document["num_nodes"])
    except KeyError as error:
        raise ValueError("traffic document needs 'num_nodes'") from error
    demands: dict[tuple[int, int], float] = {}
    for entry in document.get("demands", []):
        if len(entry) != 3:
            raise ValueError(f"demand entries are [origin, destination, erlangs]: {entry}")
        origin, destination, erlangs = entry
        demands[(int(origin), int(destination))] = float(erlangs)
    return TrafficMatrix(demands, num_nodes=num_nodes)


def save_traffic(path: str | Path, traffic: TrafficMatrix) -> None:
    Path(path).write_text(json.dumps(traffic_to_dict(traffic), indent=2))


def load_traffic(path: str | Path) -> TrafficMatrix:
    return traffic_from_dict(json.loads(Path(path).read_text()))
