"""Synthetic traffic-matrix generators.

The quadrangle experiment uses a symmetric uniform matrix; other generators
(gravity, hotspot, random) exercise the library on the "wide disparities"
the paper notes in its NSFNet matrix.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .matrix import TrafficMatrix

__all__ = [
    "uniform_traffic",
    "gravity_traffic",
    "hotspot_traffic",
    "random_traffic",
]


def uniform_traffic(num_nodes: int, per_pair: float) -> TrafficMatrix:
    """Every ordered pair offers ``per_pair`` Erlangs (the quadrangle setup)."""
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    matrix = np.full((num_nodes, num_nodes), float(per_pair))
    np.fill_diagonal(matrix, 0.0)
    return TrafficMatrix(matrix)


def gravity_traffic(weights: Sequence[float], total: float) -> TrafficMatrix:
    """Gravity model: ``T(i,j) proportional to w_i * w_j``, scaled to ``total``.

    Produces the skewed, realistic demand patterns the paper's NSFNet matrix
    exhibits when node weights are uneven.
    """
    w = np.asarray(list(weights), dtype=float)
    if w.size < 2:
        raise ValueError("need at least two nodes")
    if (w < 0).any():
        raise ValueError("weights must be non-negative")
    if total < 0:
        raise ValueError("total must be non-negative")
    matrix = np.outer(w, w)
    np.fill_diagonal(matrix, 0.0)
    mass = matrix.sum()
    if mass == 0.0:
        return TrafficMatrix(np.zeros((w.size, w.size)))
    return TrafficMatrix(matrix * (total / mass))


def hotspot_traffic(
    num_nodes: int,
    hotspot: int,
    background: float,
    surge: float,
) -> TrafficMatrix:
    """Uniform background plus extra demand to and from one hotspot node."""
    if not 0 <= hotspot < num_nodes:
        raise ValueError(f"hotspot {hotspot} out of range")
    matrix = np.full((num_nodes, num_nodes), float(background))
    matrix[hotspot, :] += surge
    matrix[:, hotspot] += surge
    np.fill_diagonal(matrix, 0.0)
    return TrafficMatrix(matrix)


def random_traffic(num_nodes: int, mean: float, seed: int = 0) -> TrafficMatrix:
    """I.i.d. exponential demands with the given mean (deterministic seed)."""
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    if mean < 0:
        raise ValueError("mean must be non-negative")
    rng = np.random.default_rng(seed)
    matrix = rng.exponential(scale=mean, size=(num_nodes, num_nodes)) if mean else np.zeros((num_nodes, num_nodes))
    np.fill_diagonal(matrix, 0.0)
    return TrafficMatrix(matrix)
