"""Traffic substrate: demand matrices, link loads, generators, calibration."""

from .calibration import CalibrationResult, calibrate_traffic, nsfnet_nominal_traffic
from .demand import (
    bifurcated_link_loads,
    loads_by_endpoints,
    multiclass_unit_loads,
    primary_link_loads,
)
from .generators import (
    gravity_traffic,
    hotspot_traffic,
    random_traffic,
    uniform_traffic,
)
from .io import load_traffic, save_traffic, traffic_from_dict, traffic_to_dict
from .matrix import TrafficMatrix
from .profiles import LoadProfile, generate_nonstationary_trace
from .workload import (
    WORKLOAD_NAMES,
    Workload,
    adversarial_workload,
    alternate_overlap_scores,
    build_workload,
    diurnal,
    flash_crowd,
    generate_workload_trace,
    parse_workload_spec,
    regional_surge,
)

__all__ = [
    "TrafficMatrix",
    "load_traffic",
    "save_traffic",
    "traffic_to_dict",
    "traffic_from_dict",
    "LoadProfile",
    "generate_nonstationary_trace",
    "Workload",
    "WORKLOAD_NAMES",
    "diurnal",
    "flash_crowd",
    "regional_surge",
    "adversarial_workload",
    "alternate_overlap_scores",
    "build_workload",
    "parse_workload_spec",
    "generate_workload_trace",
    "primary_link_loads",
    "bifurcated_link_loads",
    "multiclass_unit_loads",
    "loads_by_endpoints",
    "uniform_traffic",
    "gravity_traffic",
    "hotspot_traffic",
    "random_traffic",
    "CalibrationResult",
    "calibrate_traffic",
    "nsfnet_nominal_traffic",
]
