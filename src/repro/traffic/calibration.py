"""Reconstruction of the paper's NSFNet traffic matrix from Table 1.

The paper prints its nominal NSFNet demand matrix ``T`` (derived from the
Internet traffic projections of its reference [5]), but the matrix itself did
not survive in the text available to this reproduction — only its
consequence, the per-link primary loads ``Lambda^k`` of Table 1, did.

Fortunately everything downstream (protection levels, the nominal-load
simulations, the Erlang bound trends) depends on ``T`` through the link
loads, so we *calibrate*: find a non-negative matrix ``T_hat`` whose min-hop
primary routing reproduces Table 1's thirty directed-link loads.  With 132
O-D unknowns and 30 constraints the system is underdetermined; non-negative
least squares picks a sparse, exactly-fitting solution.  The residual is
checked to be numerically zero and the recomputed loads round to Table 1's
printed integers (the tests enforce both).

This is the one substitution of the reproduction; see DESIGN.md section 2.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy.optimize import lsq_linear, nnls

from ..topology.graph import Network
from ..topology.nsfnet import NSFNET_TABLE1_LOADS, nsfnet_backbone
from ..topology.paths import PathTable, build_path_table
from .matrix import TrafficMatrix

__all__ = [
    "calibrate_traffic",
    "nsfnet_nominal_traffic",
    "CalibrationResult",
]


class CalibrationResult:
    """Outcome of a load-calibration run.

    ``traffic`` is the reconstructed matrix, ``residual`` the Euclidean
    mismatch ``||A x - b||`` of the NNLS fit, and ``achieved_loads`` the
    link loads the reconstruction actually produces (endpoint-keyed).
    """

    def __init__(
        self,
        traffic: TrafficMatrix,
        residual: float,
        achieved_loads: dict[tuple[int, int], float],
    ):
        self.traffic = traffic
        self.residual = residual
        self.achieved_loads = achieved_loads

    def max_load_error(self, targets: dict[tuple[int, int], float]) -> float:
        """Largest absolute per-link deviation from the target loads."""
        return max(
            abs(self.achieved_loads[endpoints] - target)
            for endpoints, target in targets.items()
        )


def calibrate_traffic(
    network: Network,
    target_loads: dict[tuple[int, int], float],
    table: PathTable | None = None,
    prior: np.ndarray | None = None,
    smoothing: float = 1e-4,
) -> CalibrationResult:
    """Find a non-negative ``T`` whose min-hop routing yields ``target_loads``.

    ``target_loads`` maps every directed link's ``(src, dst)`` endpoints to
    its desired primary load in Erlangs.  Primaries default to the
    lexicographic min-hop paths of :func:`build_path_table`.

    Without a ``prior``, plain NNLS is used; it fits exactly but tends to
    concentrate the demand on few O-D pairs.  With a ``prior`` (an ``N x N``
    array of preferred demands, e.g. a gravity model), the solver instead
    minimizes ``||A x - b||^2 + smoothing * ||x - prior||^2`` subject to
    ``x >= 0`` — for small ``smoothing`` the link loads still match to well
    within the paper's integer rounding while the demand spreads over every
    pair the prior touches, restoring the statistical-multiplexing character
    of the paper's dense matrix.
    """
    if table is None:
        table = build_path_table(network)
    od_pairs = table.od_pairs()
    links = network.links
    missing = [link.endpoints for link in links if link.endpoints not in target_loads]
    if missing:
        raise ValueError(f"target loads missing for links: {missing}")
    routing = np.zeros((len(links), len(od_pairs)), dtype=float)
    for col, od in enumerate(od_pairs):
        for link_index in network.path_links(table.primary[od]):
            routing[link_index, col] = 1.0
    targets = np.array([target_loads[link.endpoints] for link in links], dtype=float)
    if prior is None:
        demands, __ = nnls(routing, targets)
    else:
        prior_arr = np.asarray(prior, dtype=float)
        if prior_arr.shape != (network.num_nodes, network.num_nodes):
            raise ValueError(
                f"prior must have shape ({network.num_nodes}, {network.num_nodes})"
            )
        if (prior_arr < 0).any():
            raise ValueError("prior demands must be non-negative")
        if smoothing <= 0:
            raise ValueError("smoothing must be positive when a prior is given")
        prior_vec = np.array([prior_arr[i, j] for (i, j) in od_pairs])
        weight = np.sqrt(smoothing)
        stacked_a = np.vstack([routing, weight * np.eye(len(od_pairs))])
        stacked_b = np.concatenate([targets, weight * prior_vec])
        solution = lsq_linear(stacked_a, stacked_b, bounds=(0.0, np.inf))
        demands = solution.x
    residual = float(np.linalg.norm(routing @ demands - targets))
    matrix = np.zeros((network.num_nodes, network.num_nodes), dtype=float)
    for col, (i, j) in enumerate(od_pairs):
        matrix[i, j] = demands[col]
    achieved = routing @ demands
    achieved_by_endpoints = {
        link.endpoints: float(achieved[link.index]) for link in links
    }
    return CalibrationResult(
        traffic=TrafficMatrix(matrix),
        residual=residual,
        achieved_loads=achieved_by_endpoints,
    )


@lru_cache(maxsize=1)
def _nominal_calibration() -> CalibrationResult:
    network = nsfnet_backbone()
    targets = {k: float(v) for k, v in NSFNET_TABLE1_LOADS.items()}
    # Gravity prior spreads demand over all 132 pairs the way a real traffic
    # estimate would; node weights come from each node's total target
    # throughput so the prior is already roughly consistent with Table 1.
    out_weight = np.zeros(network.num_nodes)
    for (src, __), load in targets.items():
        out_weight[src] += load
    prior = np.outer(out_weight, out_weight)
    np.fill_diagonal(prior, 0.0)
    prior *= sum(targets.values()) / (2.0 * prior.sum())
    return calibrate_traffic(network, targets, prior=prior)


def nsfnet_nominal_traffic() -> TrafficMatrix:
    """The calibrated nominal NSFNet demand matrix (Load = 10 in Figures 6-7).

    Cached; scaling for load sweeps should go through
    :meth:`TrafficMatrix.scaled` so the cached instance stays pristine.
    """
    return _nominal_calibration().traffic
