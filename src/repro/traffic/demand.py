"""Primary traffic demand per link — Equation 1 of the paper.

``Lambda^k`` is the total demand of all O-D pairs whose primary path
traverses link ``k``::

    Lambda^k = sum over (i, j) with k in P*(i, j) of T(i, j)

Controlled alternate routing keys its protection levels off these loads.
Also supports *bifurcated* primaries (Section 4.2.2's min-link-loss rule),
where an O-D pair splits its demand across several paths with given
probabilities.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..topology.graph import Network
from ..topology.paths import Path, PathTable
from .matrix import TrafficMatrix

__all__ = [
    "primary_link_loads",
    "bifurcated_link_loads",
    "multiclass_unit_loads",
    "loads_by_endpoints",
]


def primary_link_loads(
    network: Network,
    table: PathTable,
    traffic: TrafficMatrix,
) -> np.ndarray:
    """Per-link primary demand ``Lambda^k``, indexed by link index.

    Every positive demand must have a primary path in ``table``.
    """
    loads = np.zeros(network.num_links, dtype=float)
    for od, demand in traffic.positive_pairs():
        path = table.primary.get(od)
        if path is None:
            raise ValueError(f"O-D pair {od} has demand {demand} but no primary path")
        for link_index in network.path_links(path):
            loads[link_index] += demand
    return loads


def bifurcated_link_loads(
    network: Network,
    splits: Mapping[tuple[int, int], Sequence[tuple[Path, float]]],
    traffic: TrafficMatrix,
) -> np.ndarray:
    """Per-link primary demand under bifurcated primaries.

    ``splits[od]`` is a list of ``(path, fraction)`` with fractions summing
    to one; the O-D demand is spread across its paths accordingly (the
    "bifurcated primary flows" of the min-link-loss rule).
    """
    loads = np.zeros(network.num_links, dtype=float)
    for od, demand in traffic.positive_pairs():
        if od not in splits:
            raise ValueError(f"O-D pair {od} has demand {demand} but no path split")
        fractions = [fraction for __, fraction in splits[od]]
        total = sum(fractions)
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"path fractions for {od} sum to {total}, expected 1")
        for path, fraction in splits[od]:
            if fraction == 0.0:
                continue
            for link_index in network.path_links(path):
                loads[link_index] += demand * fraction
    return loads


def multiclass_unit_loads(
    network: Network,
    table: PathTable,
    class_traffic: Sequence[tuple[str, TrafficMatrix, int]],
) -> np.ndarray:
    """Primary demand per link in *bandwidth units* for several call classes.

    Each class contributes ``demand * bandwidth`` units along its primary
    paths — the load measure the multirate protection rule
    (:func:`repro.core.multirate.multirate_protection_level`) expects.
    """
    loads = np.zeros(network.num_links, dtype=float)
    for __, matrix, bandwidth in class_traffic:
        loads += bandwidth * primary_link_loads(network, table, matrix)
    return loads


def loads_by_endpoints(network: Network, loads: np.ndarray) -> dict[tuple[int, int], float]:
    """Re-key a link-indexed load array by ``(src, dst)`` endpoint pairs."""
    if loads.shape != (network.num_links,):
        raise ValueError(
            f"expected load array of shape ({network.num_links},), got {loads.shape}"
        )
    return {link.endpoints: float(loads[link.index]) for link in network.links}
