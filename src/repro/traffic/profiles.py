"""Time-varying load profiles and nonstationary arrival traces.

The paper evaluates stationary Poisson load, but its deployment story —
links continuously re-estimating their primary demand — only matters when
demand *moves*.  This module supplies the moving demand: a piecewise-
constant :class:`LoadProfile` scaling a base traffic matrix over time, and a
thinning-based nonstationary trace generator compatible with the standard
simulator (the trace format is unchanged; only the arrival instants follow
the profile).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
import numpy as np

from ..sim.rng import substream
from ..sim.trace import ArrivalTrace
from .matrix import TrafficMatrix

__all__ = ["LoadProfile", "generate_nonstationary_trace"]


@dataclass(frozen=True)
class LoadProfile:
    """A piecewise-constant multiplier on a base demand matrix.

    ``breakpoints`` are the times at which the multiplier changes;
    ``scales[i]`` applies on ``[breakpoints[i], breakpoints[i+1])`` and
    ``scales[0]`` before the first breakpoint — so ``len(scales) ==
    len(breakpoints) + 1``.  All scales must be non-negative.
    """

    breakpoints: tuple[float, ...]
    scales: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.scales) != len(self.breakpoints) + 1:
            raise ValueError(
                f"need {len(self.breakpoints) + 1} scales for "
                f"{len(self.breakpoints)} breakpoints, got {len(self.scales)}"
            )
        for s in self.scales:
            if not math.isfinite(s):
                raise ValueError(f"scales must be finite, got {s!r}")
            if s < 0:
                raise ValueError("scales must be non-negative")
        for b in self.breakpoints:
            if not math.isfinite(b):
                raise ValueError(f"breakpoints must be finite, got {b!r}")
        if list(self.breakpoints) != sorted(self.breakpoints):
            raise ValueError("breakpoints must be sorted")

    @staticmethod
    def constant(scale: float = 1.0) -> "LoadProfile":
        return LoadProfile(breakpoints=(), scales=(scale,))

    @staticmethod
    def step(at: float, before: float, after: float) -> "LoadProfile":
        """A single load shift at time ``at`` (e.g. a surge or failover)."""
        return LoadProfile(breakpoints=(at,), scales=(before, after))

    @staticmethod
    def day_night(
        period: float, day_scale: float, night_scale: float, horizon: float
    ) -> "LoadProfile":
        """Alternating day/night scales of equal length up to ``horizon``."""
        if period <= 0 or horizon <= 0:
            raise ValueError("period and horizon must be positive")
        breakpoints = []
        scales = [day_scale]
        t = period / 2.0
        day = False
        while t < horizon:
            breakpoints.append(t)
            scales.append(day_scale if day else night_scale)
            day = not day
            t += period / 2.0
        return LoadProfile(tuple(breakpoints), tuple(scales))

    @staticmethod
    def pulse(start: float, end: float, scale: float, base: float = 1.0) -> "LoadProfile":
        """``base`` everywhere except ``[start, end)``, where ``scale`` holds.

        The building block of surge scenarios: a regional overload that
        arrives and clears.
        """
        if end <= start:
            raise ValueError("pulse end must lie after start")
        return LoadProfile(breakpoints=(start, end), scales=(base, scale, base))

    @property
    def max_scale(self) -> float:
        return max(self.scales)

    def scale_at(self, time: float) -> float:
        """The multiplier in force at ``time``."""
        return self.scales[bisect_right(self.breakpoints, time)]

    def scales_at(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`scale_at` over an array of times."""
        scales = np.asarray(self.scales, dtype=float)
        if not self.breakpoints:
            return np.full(np.asarray(times).shape, scales[0])
        index = np.searchsorted(
            np.asarray(self.breakpoints, dtype=float), times, side="right"
        )
        return scales[index]

    def multiply(self, other: "LoadProfile") -> "LoadProfile":
        """The pointwise product profile (piecewise-constant again).

        Composition law of the workload layer: overlaying two workloads
        multiplies their per-pair profiles, so a diurnal baseline with a
        flash crowd on top is itself a :class:`LoadProfile`.
        """
        merged = sorted(set(self.breakpoints) | set(other.breakpoints))
        scales = tuple(
            self.scale_at(t) * other.scale_at(t)
            for t in [merged[0] - 1.0 if merged else 0.0] + merged
        )
        return LoadProfile(breakpoints=tuple(merged), scales=scales)


def generate_nonstationary_trace(
    traffic: TrafficMatrix,
    profile: LoadProfile,
    duration: float,
    seed: int,
) -> ArrivalTrace:
    """Arrivals of a Poisson process whose rate follows ``profile``.

    Standard thinning: draw a homogeneous process at the profile's peak rate
    and keep each arrival with probability ``scale(t) / max_scale``.  O-D
    marks, holding times and routing uniforms are drawn as in the
    stationary generator, so the result plugs into the simulator unchanged.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    pairs: list[tuple[int, int]] = []
    rates: list[float] = []
    for od, demand in traffic.positive_pairs():
        pairs.append(od)
        rates.append(demand)
    base_rate = float(sum(rates))
    peak = base_rate * profile.max_scale
    rng = substream(seed, "arrivals", "nonstationary")
    if peak == 0.0:
        empty = np.empty(0)
        return ArrivalTrace(
            od_pairs=tuple(pairs),
            times=empty,
            od_index=np.empty(0, dtype=np.int64),
            holding_times=empty.copy(),
            uniforms=empty.copy(),
            duration=float(duration),
            seed=seed,
        )
    count = int(rng.poisson(peak * duration))
    candidate_times = np.sort(rng.uniform(0.0, duration, size=count))
    acceptance = rng.uniform(0.0, 1.0, size=count)
    keep = acceptance * profile.max_scale < profile.scales_at(candidate_times)
    times = candidate_times[keep]
    kept = int(times.size)
    probabilities = np.asarray(rates) / base_rate
    od_index = rng.choice(len(pairs), size=kept, p=probabilities)
    return ArrivalTrace(
        od_pairs=tuple(pairs),
        times=times,
        od_index=od_index.astype(np.int64),
        holding_times=rng.exponential(1.0, size=kept),
        uniforms=rng.uniform(0.0, 1.0, size=kept),
        duration=float(duration),
        seed=seed,
    )
