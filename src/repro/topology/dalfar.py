"""Distributed alternate-route computation in the DALFAR style.

The paper attributes to Harshavardhana, Dravida and Bondi [14] the
observation that loop-free alternate routes ordered by hop count "can be
deduced with surprising ease from distributed minimum-hop path information",
via their DALFAR algorithm.  This module reproduces that flavor of
computation:

1. Nodes run a synchronous distance-vector protocol (Bellman-Ford rounds)
   exchanging hop-count estimates with neighbors only, until convergence.
2. A source node then *constructs* alternate routes hop by hop using nothing
   but (a) its neighbors' converged distance tables and (b) the partial
   route built so far — exactly the information a source-routed call set-up
   can carry.  A neighbor is a viable next hop for a route of residual hop
   budget ``h`` iff its advertised distance to the destination is at most
   ``h - 1`` when the already-visited nodes are excluded.

The result provably equals the centralized enumeration of
:func:`repro.topology.paths.simple_paths_by_length`; the test suite checks
the equivalence on every topology generator.
"""

from __future__ import annotations

from .graph import Network
from .paths import Path

__all__ = ["DistanceVectorTables", "compute_distance_vectors", "dalfar_routes"]


class DistanceVectorTables:
    """Converged per-node hop-count tables plus protocol statistics.

    ``distance(node, dst)`` is the minimum hop count from ``node`` to
    ``dst`` as known at ``node`` (``inf`` when unreachable).  ``rounds`` is
    the number of synchronous exchange rounds until quiescence — at most the
    network diameter plus one.
    """

    def __init__(self, tables: list[list[float]], rounds: int):
        self._tables = tables
        self.rounds = rounds

    def distance(self, node: int, dst: int) -> float:
        return self._tables[node][dst]

    def table(self, node: int) -> list[float]:
        """A copy of ``node``'s full distance table."""
        return list(self._tables[node])


def compute_distance_vectors(network: Network) -> DistanceVectorTables:
    """Run synchronous distance-vector rounds to convergence.

    Each round, every node recomputes its estimate to every destination as
    ``1 + min over neighbors`` of the neighbor's previous-round estimate.
    Convergence is reached when a full round changes nothing.
    """
    n = network.num_nodes
    inf = float("inf")
    tables = [[inf] * n for _ in range(n)]
    for node in range(n):
        tables[node][node] = 0.0
    neighbors = [network.neighbors(node) for node in range(n)]
    rounds = 0
    while True:
        rounds += 1
        changed = False
        snapshot = [list(row) for row in tables]
        for node in range(n):
            for dst in range(n):
                if dst == node:
                    continue
                best = tables[node][dst]
                for neighbor in neighbors[node]:
                    candidate = 1.0 + snapshot[neighbor][dst]
                    if candidate < best:
                        best = candidate
                if best < tables[node][dst]:
                    tables[node][dst] = best
                    changed = True
        if not changed:
            break
        if rounds > n + 1:  # pragma: no cover - safety net
            raise RuntimeError("distance-vector protocol failed to converge")
    return DistanceVectorTables(tables, rounds)


def dalfar_routes(
    network: Network,
    src: int,
    dst: int,
    max_hops: int | None = None,
    tables: DistanceVectorTables | None = None,
) -> list[Path]:
    """All loop-free routes ``src -> dst`` within ``max_hops``, by (length, lex).

    Routes are grown hop by hop; at each partial route the next hop is
    admitted iff, in the network with the visited nodes removed, it can
    still reach ``dst`` within the remaining budget.  That residual
    reachability is what a real DALFAR deployment would approximate from
    distance tables; we compute it exactly from neighbor exchanges on the
    pruned topology, which keeps the computation local per extension step.

    The converged ``tables`` (used for the initial feasibility check and
    budget defaulting) can be shared across calls.
    """
    if src == dst:
        raise ValueError("src and dst must differ")
    if tables is None:
        tables = compute_distance_vectors(network)
    limit = network.num_nodes - 1 if max_hops is None else max_hops
    if tables.distance(src, dst) > limit:
        return []
    results: list[Path] = []
    visited = [False] * network.num_nodes
    visited[src] = True

    def residual_distance(start: int) -> float:
        """Hop distance start -> dst avoiding visited nodes (start excepted)."""
        if start == dst:
            return 0.0
        inf = float("inf")
        dist = [inf] * network.num_nodes
        dist[start] = 0.0
        frontier = [start]
        while frontier:
            next_frontier = []
            for node in frontier:
                for neighbor in network.neighbors(node):
                    if visited[neighbor] and neighbor != dst:
                        continue
                    if dist[neighbor] == inf:
                        dist[neighbor] = dist[node] + 1.0
                        if neighbor != dst:
                            next_frontier.append(neighbor)
            frontier = next_frontier
        return dist[dst]

    def extend(route: list[int]) -> None:
        node = route[-1]
        if node == dst:
            results.append(tuple(route))
            return
        budget = limit - (len(route) - 1)
        if budget <= 0:
            return
        for neighbor in sorted(network.neighbors(node)):
            if visited[neighbor]:
                continue
            visited[neighbor] = True
            route.append(neighbor)
            if neighbor == dst or residual_distance(neighbor) <= budget - 1:
                extend(route)
            route.pop()
            visited[neighbor] = False

    extend([src])
    results.sort(key=lambda p: (len(p), p))
    return results
