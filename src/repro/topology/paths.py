"""Path computation: min-hop primaries and loop-free alternates by length.

The paper's routing scheme needs, per ordered O-D pair:

* a unique minimum-hop **primary path** ``P*(i, j)`` (its base
  state-independent rule), and
* the **loop-free alternate paths**, attempted in order of increasing hop
  length, optionally truncated at ``H`` hops (the design parameter of
  Section 3).

The paper computes these with a K-shortest-path algorithm; we provide BFS
min-hop routing with a deterministic lexicographic tie-break, Yen-style
K-shortest simple paths, exhaustive simple-path enumeration ordered by
``(length, lexicographic)``, and the :class:`PathTable` bundling primaries
and alternates for the whole network.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator, Sequence

from .graph import Network

__all__ = [
    "min_hop_distances",
    "min_hop_path",
    "all_min_hop_paths",
    "simple_paths_by_length",
    "k_shortest_paths",
    "PathTable",
    "build_path_table",
    "alternate_path_census",
]

Path = tuple[int, ...]


def min_hop_distances(network: Network, source: int) -> list[float]:
    """Hop distance from ``source`` to every node (``inf`` if unreachable)."""
    dist: list[float] = [float("inf")] * network.num_nodes
    dist[source] = 0
    frontier = [source]
    while frontier:
        next_frontier = []
        for node in frontier:
            for neighbor in network.neighbors(node):
                if dist[neighbor] == float("inf"):
                    dist[neighbor] = dist[node] + 1
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return dist


def min_hop_path(network: Network, src: int, dst: int) -> Path | None:
    """The lexicographically smallest minimum-hop path ``src -> dst``.

    The lexicographic tie-break makes the paper's "unique primary path"
    deterministic and reproducible.  Returns ``None`` when ``dst`` is
    unreachable.
    """
    if src == dst:
        raise ValueError("src and dst must differ")
    # Distances *to* dst over forward links: BFS on the reverse graph.
    dist_to = _distances_to(network, dst)
    if dist_to[src] == float("inf"):
        return None
    # Greedy descent: at each step take the smallest-numbered neighbor that
    # lies on some shortest path (dist decreases by one).  This yields the
    # lexicographically smallest shortest path.
    path = [src]
    node = src
    while node != dst:
        candidates = [
            neighbor
            for neighbor in network.neighbors(node)
            if dist_to[neighbor] == dist_to[node] - 1
        ]
        node = min(candidates)
        path.append(node)
    return tuple(path)


def all_min_hop_paths(network: Network, src: int, dst: int) -> list[Path]:
    """Every minimum-hop path ``src -> dst`` in lexicographic order."""
    if src == dst:
        raise ValueError("src and dst must differ")
    dist_to = _distances_to(network, dst)
    if dist_to[src] == float("inf"):
        return []
    results: list[Path] = []

    def extend(path: list[int]) -> None:
        node = path[-1]
        if node == dst:
            results.append(tuple(path))
            return
        for neighbor in sorted(network.neighbors(node)):
            if dist_to[neighbor] == dist_to[node] - 1:
                path.append(neighbor)
                extend(path)
                path.pop()

    extend([src])
    return results


def _distances_to(network: Network, dst: int) -> list[float]:
    """Hop distance from every node to ``dst`` over forward links."""
    reverse_adj: list[list[int]] = [[] for _ in range(network.num_nodes)]
    for link in network.links:
        if not network.is_failed(link.index):
            reverse_adj[link.dst].append(link.src)
    dist: list[float] = [float("inf")] * network.num_nodes
    dist[dst] = 0
    frontier = [dst]
    while frontier:
        next_frontier = []
        for node in frontier:
            for upstream in reverse_adj[node]:
                if dist[upstream] == float("inf"):
                    dist[upstream] = dist[node] + 1
                    next_frontier.append(upstream)
        frontier = next_frontier
    return dist


def simple_paths_by_length(
    network: Network,
    src: int,
    dst: int,
    max_hops: int | None = None,
) -> list[Path]:
    """All simple (loop-free) paths ``src -> dst``, sorted by (length, lex).

    ``max_hops`` bounds the hop count (the paper's ``H``); ``None`` allows
    any loop-free length, i.e. up to ``num_nodes - 1`` hops.  Exhaustive DFS
    is practical here because the paper's meshes are sparse — NSFNet has a
    cycle-space dimension of 4, so no pair has more than a couple dozen
    simple paths.
    """
    if src == dst:
        raise ValueError("src and dst must differ")
    limit = network.num_nodes - 1 if max_hops is None else max_hops
    if limit < 1:
        return []
    results: list[Path] = []
    on_path = [False] * network.num_nodes
    on_path[src] = True
    # Prune branches that cannot reach dst within the remaining hop budget.
    dist_to = _distances_to(network, dst)

    def extend(path: list[int]) -> None:
        node = path[-1]
        remaining = limit - (len(path) - 1)
        if node == dst:
            results.append(tuple(path))
            return
        if remaining <= 0 or dist_to[node] > remaining:
            return
        for neighbor in sorted(network.neighbors(node)):
            if not on_path[neighbor]:
                on_path[neighbor] = True
                path.append(neighbor)
                extend(path)
                path.pop()
                on_path[neighbor] = False

    extend([src])
    results.sort(key=lambda p: (len(p), p))
    return results


def k_shortest_paths(
    network: Network,
    src: int,
    dst: int,
    k: int,
    max_hops: int | None = None,
) -> list[Path]:
    """Yen's algorithm: the ``k`` shortest simple paths by hop count.

    Ties are broken lexicographically, so the output is a prefix of
    :func:`simple_paths_by_length`'s ordering.  Provided as the scalable
    route-computation the paper mentions; on the paper's small meshes the
    exhaustive enumeration is equally usable and the two are cross-checked
    in the tests.
    """
    if k < 1:
        return []
    first = min_hop_path(network, src, dst)
    if first is None:
        return []
    limit = network.num_nodes - 1 if max_hops is None else max_hops
    if len(first) - 1 > limit:
        return []
    found: list[Path] = [first]
    # Candidate heap keyed by (length, path) for deterministic ordering.
    candidates: list[tuple[int, Path]] = []
    seen: set[Path] = {first}
    while len(found) < k:
        prev = found[-1]
        for i in range(len(prev) - 1):
            spur_node = prev[i]
            root = prev[: i + 1]
            removed: list[tuple[int, int]] = []
            for path in found:
                if len(path) > i and path[: i + 1] == root:
                    a, b = path[i], path[i + 1]
                    if network.has_link(a, b):
                        network.fail_link(a, b)
                        removed.append((a, b))
            blocked_nodes = set(root[:-1])
            spur = _min_hop_path_avoiding(network, spur_node, dst, blocked_nodes)
            for a, b in removed:
                network.restore_link(a, b)
            if spur is None:
                continue
            total = root[:-1] + spur
            if len(total) - 1 > limit or total in seen:
                continue
            if len(set(total)) != len(total):
                continue
            seen.add(total)
            heapq.heappush(candidates, (len(total), total))
        if not candidates:
            break
        __, best = heapq.heappop(candidates)
        found.append(best)
    return found[:k]


def _min_hop_path_avoiding(
    network: Network, src: int, dst: int, blocked: set[int]
) -> Path | None:
    """Lexicographically smallest min-hop path avoiding ``blocked`` nodes."""
    if src in blocked or dst in blocked:
        return None
    # BFS from dst on the reverse graph, skipping blocked nodes.
    reverse_adj: list[list[int]] = [[] for _ in range(network.num_nodes)]
    for link in network.links:
        if network.is_failed(link.index):
            continue
        if link.src in blocked or link.dst in blocked:
            continue
        reverse_adj[link.dst].append(link.src)
    dist: list[float] = [float("inf")] * network.num_nodes
    dist[dst] = 0
    frontier = [dst]
    while frontier:
        next_frontier = []
        for node in frontier:
            for upstream in reverse_adj[node]:
                if dist[upstream] == float("inf"):
                    dist[upstream] = dist[node] + 1
                    next_frontier.append(upstream)
        frontier = next_frontier
    if dist[src] == float("inf"):
        return None
    path = [src]
    node = src
    while node != dst:
        candidates = [
            neighbor
            for neighbor in network.neighbors(node)
            if neighbor not in blocked and dist[neighbor] == dist[node] - 1
        ]
        node = min(candidates)
        path.append(node)
    return tuple(path)


@dataclass(frozen=True)
class PathTable:
    """Primary and alternate paths for every ordered O-D pair.

    ``primary[(i, j)]`` is the unique primary path and
    ``alternates[(i, j)]`` the loop-free alternates in increasing-length
    order, primary excluded, truncated at ``max_hops`` hops.  Pairs that are
    disconnected are absent from ``primary``.
    """

    primary: dict[tuple[int, int], Path]
    alternates: dict[tuple[int, int], tuple[Path, ...]]
    max_hops: int

    def routes(self, od: tuple[int, int]) -> tuple[Path, ...]:
        """Primary followed by alternates for an O-D pair."""
        if od not in self.primary:
            return ()
        return (self.primary[od],) + self.alternates.get(od, ())

    def od_pairs(self) -> list[tuple[int, int]]:
        return sorted(self.primary)


def build_path_table(
    network: Network,
    max_hops: int | None = None,
    primary: dict[tuple[int, int], Path] | None = None,
) -> PathTable:
    """Build the :class:`PathTable` for a network.

    ``max_hops`` is the paper's ``H`` (maximum alternate-path hop length);
    ``None`` means unrestricted, i.e. ``num_nodes - 1``.  A custom
    ``primary`` mapping may be supplied (the min-link-loss experiments pick
    primaries by optimization); by default the lexicographic min-hop path is
    used.  Primaries longer than ``H`` are allowed — such pairs simply get no
    alternates, as Section 3.2 discusses.
    """
    limit = network.num_nodes - 1 if max_hops is None else max_hops
    primaries: dict[tuple[int, int], Path] = {}
    alternates: dict[tuple[int, int], tuple[Path, ...]] = {}
    for od in network.node_pairs():
        if primary is not None and od in primary:
            chosen = tuple(primary[od])
            if not network.is_valid_path(chosen):
                raise ValueError(f"supplied primary for {od} is not a valid path")
        else:
            found = min_hop_path(network, *od)
            if found is None:
                continue
            chosen = found
        primaries[od] = chosen
        pool = simple_paths_by_length(network, od[0], od[1], max_hops=limit)
        alternates[od] = tuple(p for p in pool if p != chosen)
    return PathTable(primary=primaries, alternates=alternates, max_hops=limit)


def alternate_path_census(table: PathTable) -> dict[str, float]:
    """Summary statistics of alternate-path counts per O-D pair.

    The paper reports, for the NSFNet model: about 9 alternates on average
    (max 15, min 5) when ``H = 11`` and about 7 (max 13, min 5) when
    ``H = 6``.
    """
    counts = [len(table.alternates.get(od, ())) for od in table.od_pairs()]
    if not counts:
        return {"mean": 0.0, "max": 0.0, "min": 0.0, "pairs": 0.0}
    return {
        "mean": sum(counts) / len(counts),
        "max": float(max(counts)),
        "min": float(min(counts)),
        "pairs": float(len(counts)),
    }


def iter_routes(
    table: PathTable,
) -> Iterator[tuple[tuple[int, int], Sequence[Path]]]:
    """Iterate ``(od, routes)`` over all connected pairs."""
    for od in table.od_pairs():
        yield od, table.routes(od)
