"""Directed-link mesh network model.

The paper models a network as nodes joined by *directed* links (each physical
link is a pair of unidirectional links transmitting in opposite directions),
where a link's capacity counts the number of unit-bandwidth calls it can
carry simultaneously.  This module provides that model: a :class:`Network` of
integer-indexed nodes and :class:`Link` objects, with optional node labels
(the NSFNet nodes carry city names), link lookup by endpoint pair, and
failure masking for the Section-4.2.2 link-failure experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

__all__ = ["Link", "Network"]


@dataclass(frozen=True)
class Link:
    """A unidirectional link.

    ``index`` is the link's position in the network's link list (simulation
    state is stored in arrays indexed by it), ``src -> dst`` its direction,
    and ``capacity`` the number of simultaneous calls it supports.
    """

    index: int
    src: int
    dst: int
    capacity: int

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError(f"link capacity must be non-negative, got {self.capacity}")
        if self.src == self.dst:
            raise ValueError(f"self-loop link at node {self.src} is not allowed")

    @property
    def endpoints(self) -> tuple[int, int]:
        return (self.src, self.dst)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.src}->{self.dst}"


class Network:
    """A general-mesh network of directed links.

    Nodes are integers ``0 .. num_nodes - 1``.  Links are added with
    :meth:`add_link` (unidirectional) or :meth:`add_duplex_link` (a pair of
    opposite unidirectional links, the paper's physical-link model).  At most
    one link may join an ordered node pair.

    Links may be *failed* (Section 4.2.2 studies failures of ``2<->3`` and
    ``7<->9`` in the NSFNet model); failed links are excluded from routing
    and admit no calls, but keep their indices so state arrays stay aligned.
    """

    def __init__(self, num_nodes: int, node_names: Sequence[str] | None = None):
        if num_nodes < 1:
            raise ValueError("network needs at least one node")
        if node_names is not None and len(node_names) != num_nodes:
            raise ValueError(
                f"expected {num_nodes} node names, got {len(node_names)}"
            )
        self._num_nodes = num_nodes
        self._node_names = list(node_names) if node_names is not None else None
        self._links: list[Link] = []
        self._by_endpoints: dict[tuple[int, int], int] = {}
        self._out: list[list[int]] = [[] for _ in range(num_nodes)]
        self._failed: set[int] = set()

    # ------------------------------------------------------------------ build

    def add_link(self, src: int, dst: int, capacity: int) -> Link:
        """Add a unidirectional link and return it."""
        self._check_node(src)
        self._check_node(dst)
        if (src, dst) in self._by_endpoints:
            raise ValueError(f"link {src}->{dst} already exists")
        link = Link(index=len(self._links), src=src, dst=dst, capacity=capacity)
        self._links.append(link)
        self._by_endpoints[(src, dst)] = link.index
        self._out[src].append(link.index)
        return link

    def add_duplex_link(self, a: int, b: int, capacity: int) -> tuple[Link, Link]:
        """Add the pair of opposite links ``a->b`` and ``b->a``."""
        return self.add_link(a, b, capacity), self.add_link(b, a, capacity)

    # ------------------------------------------------------------ inspection

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_links(self) -> int:
        return len(self._links)

    @property
    def links(self) -> tuple[Link, ...]:
        return tuple(self._links)

    def node_name(self, node: int) -> str:
        """Human-readable node label (falls back to the index)."""
        self._check_node(node)
        if self._node_names is None:
            return str(node)
        return self._node_names[node]

    def nodes(self) -> range:
        return range(self._num_nodes)

    def node_pairs(self) -> Iterator[tuple[int, int]]:
        """All ordered pairs of distinct nodes (the O-D pairs)."""
        for i in range(self._num_nodes):
            for j in range(self._num_nodes):
                if i != j:
                    yield (i, j)

    def link(self, index: int) -> Link:
        return self._links[index]

    def link_between(self, src: int, dst: int) -> Link | None:
        """The link ``src->dst`` if it exists and is not failed."""
        index = self._by_endpoints.get((src, dst))
        if index is None or index in self._failed:
            return None
        return self._links[index]

    def has_link(self, src: int, dst: int) -> bool:
        return self.link_between(src, dst) is not None

    def out_links(self, node: int) -> list[Link]:
        """Working links leaving ``node``."""
        self._check_node(node)
        return [self._links[i] for i in self._out[node] if i not in self._failed]

    def neighbors(self, node: int) -> list[int]:
        """Nodes reachable over one working link from ``node``."""
        return [link.dst for link in self.out_links(node)]

    def capacities(self) -> np.ndarray:
        """Capacity array indexed by link index (0 for failed links)."""
        caps = np.array([link.capacity for link in self._links], dtype=np.int64)
        for index in self._failed:
            caps[index] = 0
        return caps

    def duplex_link_indices(self, a: int, b: int) -> tuple[int, int]:
        """Indices of the ``a->b`` and ``b->a`` links (failed or not).

        Raises ``KeyError`` naming the pair when either direction is absent —
        the validation entry point for failure scenarios and fault timelines.
        """
        forward = self._by_endpoints.get((a, b))
        backward = self._by_endpoints.get((b, a))
        if forward is None or backward is None:
            raise KeyError(f"no duplex link {a}<->{b} in the network")
        return forward, backward

    # --------------------------------------------------------------- failures

    def fail_link(self, src: int, dst: int) -> None:
        """Take the ``src->dst`` link out of service."""
        index = self._by_endpoints.get((src, dst))
        if index is None:
            raise KeyError(f"no link {src}->{dst}")
        self._failed.add(index)

    def fail_duplex_link(self, a: int, b: int) -> None:
        """Take both directions of the physical link ``a<->b`` out of service."""
        self.fail_link(a, b)
        self.fail_link(b, a)

    def set_link_state(self, index: int, up: bool) -> None:
        """Fail (``up=False``) or restore (``up=True``) a link by index.

        The index-based twin of :meth:`fail_link`/:meth:`restore_link`, used
        by the dynamic fault plane whose events are resolved to indices.
        """
        if not 0 <= index < len(self._links):
            raise IndexError(f"link index {index} out of range [0, {len(self._links)})")
        if up:
            self._failed.discard(index)
        else:
            self._failed.add(index)

    def restore_link(self, src: int, dst: int) -> None:
        index = self._by_endpoints.get((src, dst))
        if index is None:
            raise KeyError(f"no link {src}->{dst}")
        self._failed.discard(index)

    def restore_all(self) -> None:
        self._failed.clear()

    @property
    def failed_links(self) -> frozenset[int]:
        return frozenset(self._failed)

    def is_failed(self, index: int) -> bool:
        return index in self._failed

    # ------------------------------------------------------------------ paths

    def path_links(self, path: Sequence[int]) -> tuple[int, ...]:
        """Link indices along a node path; raises if any hop is missing/failed."""
        if len(path) < 2:
            raise ValueError(f"a path needs at least two nodes, got {list(path)}")
        indices = []
        for src, dst in zip(path, path[1:]):
            link = self.link_between(src, dst)
            if link is None:
                raise ValueError(f"path uses missing or failed link {src}->{dst}")
            indices.append(link.index)
        return tuple(indices)

    def is_valid_path(self, path: Sequence[int]) -> bool:
        """True when ``path`` is a simple node path over working links."""
        if len(path) < 2 or len(set(path)) != len(path):
            return False
        return all(self.has_link(a, b) for a, b in zip(path, path[1:]))

    # ------------------------------------------------------------------ misc

    def copy(self) -> "Network":
        """Deep copy (links are immutable; failure set is copied)."""
        clone = Network(self._num_nodes, self._node_names)
        for link in self._links:
            clone.add_link(link.src, link.dst, link.capacity)
        clone._failed = set(self._failed)
        return clone

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._num_nodes:
            raise ValueError(f"node {node} out of range [0, {self._num_nodes})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Network(num_nodes={self._num_nodes}, num_links={len(self._links)}, "
            f"failed={len(self._failed)})"
        )
