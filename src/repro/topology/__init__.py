"""Topology substrate: mesh model, generators, NSFNet data, path algorithms."""

from .dalfar import DistanceVectorTables, compute_distance_vectors, dalfar_routes
from .generators import (
    fully_connected,
    grid,
    line,
    quadrangle,
    random_mesh,
    ring,
    star,
    torus,
    waxman_mesh,
)
from .graph import Link, Network
from .io import load_network, network_from_dict, network_to_dict, save_network
from .nsfnet import (
    NSFNET_DUPLEX_LINKS,
    NSFNET_LINK_CAPACITY,
    NSFNET_NODE_NAMES,
    NSFNET_NUM_NODES,
    NSFNET_TABLE1_LOADS,
    NSFNET_TABLE1_PROTECTION,
    nsfnet_backbone,
)
from .paths import (
    PathTable,
    all_min_hop_paths,
    alternate_path_census,
    build_path_table,
    k_shortest_paths,
    min_hop_distances,
    min_hop_path,
    simple_paths_by_length,
)

__all__ = [
    "Link",
    "Network",
    "load_network",
    "save_network",
    "network_to_dict",
    "network_from_dict",
    "fully_connected",
    "quadrangle",
    "ring",
    "line",
    "grid",
    "star",
    "random_mesh",
    "torus",
    "waxman_mesh",
    "NSFNET_NUM_NODES",
    "NSFNET_DUPLEX_LINKS",
    "NSFNET_LINK_CAPACITY",
    "NSFNET_NODE_NAMES",
    "NSFNET_TABLE1_LOADS",
    "NSFNET_TABLE1_PROTECTION",
    "nsfnet_backbone",
    "PathTable",
    "all_min_hop_paths",
    "alternate_path_census",
    "build_path_table",
    "k_shortest_paths",
    "min_hop_distances",
    "min_hop_path",
    "simple_paths_by_length",
    "DistanceVectorTables",
    "compute_distance_vectors",
    "dalfar_routes",
]
