"""The NSFNet T3 Backbone model of the paper's Section 4.2 (Figure 5).

Twelve Core Nodal Switching Subsystems joined by fifteen duplex links, the
Fall-1992 configuration.  Table 1 of the paper enumerates the thirty
directed links; the adjacency below reproduces that list exactly.

The paper provisions every directional link at 155 Mb/s with 100 Mb/s set
aside for rate-based traffic and uses a 1 Mb/s video call as the prototype
call, so every directed link has capacity ``C = 100`` calls.

City labels: the paper's Figure 5 names each node after its Exterior NSS
sites, but those labels did not survive in the text available to us; the
labels here are geographically plausible stand-ins and are purely cosmetic —
all computations key off the node indices ``0 .. 11``, which *are* the
paper's (Table 1 uses them directly).
"""

from __future__ import annotations

from .graph import Network

__all__ = [
    "NSFNET_NUM_NODES",
    "NSFNET_DUPLEX_LINKS",
    "NSFNET_LINK_CAPACITY",
    "NSFNET_NODE_NAMES",
    "NSFNET_TABLE1_LOADS",
    "NSFNET_TABLE1_PROTECTION",
    "nsfnet_backbone",
]

NSFNET_NUM_NODES = 12

#: The fifteen physical (duplex) links of Figure 5 / Table 1.
NSFNET_DUPLEX_LINKS: tuple[tuple[int, int], ...] = (
    (0, 1),
    (0, 11),
    (1, 2),
    (1, 5),
    (2, 3),
    (3, 4),
    (4, 5),
    (4, 11),
    (5, 6),
    (6, 7),
    (7, 8),
    (7, 9),
    (8, 10),
    (9, 10),
    (10, 11),
)

#: Calls per directed link: 100 Mb/s of rate-based capacity at 1 Mb/s a call.
NSFNET_LINK_CAPACITY = 100

#: Cosmetic stand-in labels (see module docstring).
NSFNET_NODE_NAMES: tuple[str, ...] = (
    "Seattle",
    "Palo Alto",
    "San Diego",
    "Houston",
    "Atlanta",
    "St. Louis",
    "Pittsburgh",
    "Washington DC",
    "New York",
    "Greensboro",
    "Cleveland",
    "Chicago",
)

#: Table 1 of the paper: directed link -> primary load Lambda^k (Erlangs,
#: rounded to integers as printed) under the nominal traffic matrix.
NSFNET_TABLE1_LOADS: dict[tuple[int, int], int] = {
    (0, 1): 74,
    (0, 11): 77,
    (1, 0): 71,
    (1, 2): 37,
    (1, 5): 46,
    (2, 1): 34,
    (2, 3): 16,
    (3, 2): 16,
    (3, 4): 49,
    (4, 3): 54,
    (4, 5): 63,
    (4, 11): 103,
    (5, 1): 49,
    (5, 4): 65,
    (5, 6): 81,
    (6, 5): 87,
    (6, 7): 74,
    (7, 6): 73,
    (7, 8): 71,
    (7, 9): 43,
    (8, 7): 76,
    (8, 10): 124,
    (9, 7): 39,
    (9, 10): 49,
    (10, 8): 107,
    (10, 9): 48,
    (10, 11): 167,
    (11, 0): 85,
    (11, 4): 104,
    (11, 10): 154,
}

#: Table 1 of the paper: directed link -> (r for H=6, r for H=11).
NSFNET_TABLE1_PROTECTION: dict[tuple[int, int], tuple[int, int]] = {
    (0, 1): (7, 10),
    (0, 11): (8, 12),
    (1, 0): (6, 8),
    (1, 2): (2, 3),
    (1, 5): (3, 4),
    (2, 1): (2, 3),
    (2, 3): (1, 2),
    (3, 2): (1, 2),
    (3, 4): (3, 4),
    (4, 3): (3, 4),
    (4, 5): (4, 6),
    (4, 11): (56, 100),
    (5, 1): (3, 4),
    (5, 4): (5, 6),
    (5, 6): (11, 15),
    (6, 5): (16, 26),
    (6, 7): (7, 10),
    (7, 6): (7, 9),
    (7, 8): (6, 8),
    (7, 9): (3, 3),
    (8, 7): (8, 11),
    (8, 10): (100, 100),
    (9, 7): (2, 3),
    (9, 10): (3, 4),
    (10, 8): (70, 100),
    (10, 9): (3, 4),
    (10, 11): (100, 100),
    (11, 0): (14, 22),
    (11, 4): (60, 100),
    (11, 10): (100, 100),
}


def nsfnet_backbone(capacity: int = NSFNET_LINK_CAPACITY) -> Network:
    """Build the 12-node NSFNet T3 backbone with the given per-link capacity."""
    network = Network(NSFNET_NUM_NODES, node_names=NSFNET_NODE_NAMES)
    for a, b in NSFNET_DUPLEX_LINKS:
        network.add_duplex_link(a, b, capacity)
    return network
