"""Topology generators.

The paper's first experiment runs on a fully-connected 4-node network (the
"quadrangle"); the second on the sparse NSFNet mesh.  This module generates
those and other standard meshes so the control scheme can be exercised on
arbitrary general-mesh topologies: fully-connected, ring, line, two-dimen-
sional grid, star, and connected random meshes.
"""

from __future__ import annotations

import numpy as np

from .graph import Network

__all__ = [
    "fully_connected",
    "quadrangle",
    "ring",
    "line",
    "grid",
    "torus",
    "star",
    "random_mesh",
    "waxman_mesh",
]


def fully_connected(num_nodes: int, capacity: int) -> Network:
    """Complete graph: every ordered node pair gets a direct link."""
    if num_nodes < 2:
        raise ValueError("a fully-connected network needs at least two nodes")
    network = Network(num_nodes)
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            network.add_duplex_link(i, j, capacity)
    return network


def quadrangle(capacity: int = 100) -> Network:
    """The paper's fully-connected 4-node quadrangle (Section 4.1)."""
    return fully_connected(4, capacity)


def ring(num_nodes: int, capacity: int) -> Network:
    """Cycle of ``num_nodes`` duplex links."""
    if num_nodes < 3:
        raise ValueError("a ring needs at least three nodes")
    network = Network(num_nodes)
    for i in range(num_nodes):
        network.add_duplex_link(i, (i + 1) % num_nodes, capacity)
    return network


def line(num_nodes: int, capacity: int) -> Network:
    """Simple chain topology — useful for tests (no alternate paths exist)."""
    if num_nodes < 2:
        raise ValueError("a line needs at least two nodes")
    network = Network(num_nodes)
    for i in range(num_nodes - 1):
        network.add_duplex_link(i, i + 1, capacity)
    return network


def grid(rows: int, cols: int, capacity: int) -> Network:
    """Two-dimensional grid, row-major node numbering."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ValueError("grid needs at least two nodes")
    network = Network(rows * cols)
    for row in range(rows):
        for col in range(cols):
            node = row * cols + col
            if col + 1 < cols:
                network.add_duplex_link(node, node + 1, capacity)
            if row + 1 < rows:
                network.add_duplex_link(node, node + cols, capacity)
    return network


def torus(rows: int, cols: int, capacity: int) -> Network:
    """Two-dimensional torus (grid with wraparound), row-major numbering.

    Every node has degree four, so every pair enjoys several disjoint
    alternates — a convenient symmetric test bed for alternate routing.
    """
    if rows < 3 or cols < 3:
        raise ValueError("torus needs at least 3x3 nodes (else parallel links)")
    network = Network(rows * cols)
    for row in range(rows):
        for col in range(cols):
            node = row * cols + col
            network.add_duplex_link(node, row * cols + (col + 1) % cols, capacity)
            network.add_duplex_link(node, ((row + 1) % rows) * cols + col, capacity)
    return network


def star(num_leaves: int, capacity: int) -> Network:
    """Hub node 0 joined to ``num_leaves`` leaves — single-path by force."""
    if num_leaves < 1:
        raise ValueError("a star needs at least one leaf")
    network = Network(num_leaves + 1)
    for leaf in range(1, num_leaves + 1):
        network.add_duplex_link(0, leaf, capacity)
    return network


def random_mesh(
    num_nodes: int,
    extra_links: int,
    capacity: int,
    seed: int = 0,
) -> Network:
    """Connected random mesh: a random spanning tree plus ``extra_links``.

    The spanning tree guarantees connectivity; extra duplex links are drawn
    uniformly among absent pairs.  Deterministic for a given ``seed``.
    """
    if num_nodes < 2:
        raise ValueError("random mesh needs at least two nodes")
    rng = np.random.default_rng(seed)
    network = Network(num_nodes)
    # Random spanning tree: attach each new node to a uniformly random
    # already-attached node (random recursive tree).
    order = rng.permutation(num_nodes)
    attached = [int(order[0])]
    present: set[tuple[int, int]] = set()
    for raw in order[1:]:
        node = int(raw)
        partner = int(attached[int(rng.integers(0, len(attached)))])
        network.add_duplex_link(node, partner, capacity)
        present.add((min(node, partner), max(node, partner)))
        attached.append(node)
    absent = [
        (i, j)
        for i in range(num_nodes)
        for j in range(i + 1, num_nodes)
        if (i, j) not in present
    ]
    count = min(extra_links, len(absent))
    for idx in rng.choice(len(absent), size=count, replace=False) if count else []:
        a, b = absent[int(idx)]
        network.add_duplex_link(a, b, capacity)
    return network


def waxman_mesh(
    num_nodes: int,
    capacity: int,
    alpha: float = 0.4,
    beta: float = 0.4,
    seed: int = 0,
) -> Network:
    """Waxman random graph — the classic synthetic internetwork model.

    Nodes are placed uniformly on the unit square; the pair ``(u, v)`` at
    Euclidean distance ``d`` gets a duplex link with probability
    ``alpha * exp(-d / (beta * sqrt(2)))``.  A random spanning tree is laid
    down first so the mesh is always connected (pairs already joined by the
    tree are skipped by the probabilistic pass).  Deterministic per seed.
    """
    if num_nodes < 2:
        raise ValueError("waxman mesh needs at least two nodes")
    if not 0 < alpha <= 1 or beta <= 0:
        raise ValueError("need 0 < alpha <= 1 and beta > 0")
    rng = np.random.default_rng(seed)
    positions = rng.uniform(0.0, 1.0, size=(num_nodes, 2))
    network = Network(num_nodes)
    present: set[tuple[int, int]] = set()
    # Connectivity backbone: attach each node to a random earlier node.
    for node in range(1, num_nodes):
        partner = int(rng.integers(0, node))
        network.add_duplex_link(node, partner, capacity)
        present.add((min(node, partner), max(node, partner)))
    max_distance = float(np.sqrt(2.0))
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if (i, j) in present:
                continue
            distance = float(np.linalg.norm(positions[i] - positions[j]))
            probability = alpha * np.exp(-distance / (beta * max_distance))
            if rng.random() < probability:
                network.add_duplex_link(i, j, capacity)
    return network
