"""JSON serialization for networks.

Lets users evaluate the routing schemes on their own topologies without
writing Python: a network is a JSON document with ``num_nodes``, optional
``node_names``, and a list of links.  Links may be declared ``duplex`` (one
entry creates both directions, the paper's physical-link model) or
unidirectional.

Example::

    {
      "num_nodes": 3,
      "node_names": ["A", "B", "C"],
      "links": [
        {"a": 0, "b": 1, "capacity": 30, "duplex": true},
        {"src": 1, "dst": 2, "capacity": 10}
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path

from .graph import Network

__all__ = ["network_to_dict", "network_from_dict", "save_network", "load_network"]


def network_to_dict(network: Network) -> dict:
    """Serializable representation (unidirectional links, failures dropped)."""
    names = [network.node_name(n) for n in network.nodes()]
    default_names = [str(n) for n in network.nodes()]
    document: dict = {"num_nodes": network.num_nodes}
    if names != default_names:
        document["node_names"] = names
    document["links"] = [
        {"src": link.src, "dst": link.dst, "capacity": link.capacity}
        for link in network.links
    ]
    return document


def network_from_dict(document: dict) -> Network:
    """Build a :class:`Network` from the JSON structure above."""
    try:
        num_nodes = int(document["num_nodes"])
    except KeyError as error:
        raise ValueError("network document needs 'num_nodes'") from error
    names = document.get("node_names")
    network = Network(num_nodes, node_names=names)
    for entry in document.get("links", []):
        capacity = int(entry["capacity"])
        if entry.get("duplex"):
            a = int(entry.get("a", entry.get("src", -1)))
            b = int(entry.get("b", entry.get("dst", -1)))
            if a < 0 or b < 0:
                raise ValueError(f"duplex link needs endpoints: {entry}")
            network.add_duplex_link(a, b, capacity)
        else:
            if "src" not in entry or "dst" not in entry:
                raise ValueError(f"unidirectional link needs src/dst: {entry}")
            network.add_link(int(entry["src"]), int(entry["dst"]), capacity)
    return network


def save_network(path: str | Path, network: Network) -> None:
    Path(path).write_text(json.dumps(network_to_dict(network), indent=2))


def load_network(path: str | Path) -> Network:
    return network_from_dict(json.loads(Path(path).read_text()))
