"""JSON persistence for experiment outputs.

Sweeps take minutes at paper fidelity; persisting them lets the CLI and
notebooks regenerate reports without re-simulating.  The format is plain
JSON — one document per sweep — with enough metadata (schema version,
config) to refuse incompatible files instead of misreading them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from ..sim.metrics import SweepStatistic
from .runner import ReplicationConfig, SweepPoint

__all__ = ["save_sweep", "load_sweep", "sweep_document", "statistic_to_dict"]

_SCHEMA = "repro-sweep-v1"


def statistic_to_dict(stat: SweepStatistic) -> dict:
    """JSON-ready form of one aggregate statistic."""
    return {
        "mean": stat.mean,
        "std": stat.std,
        "half_width": stat.half_width,
        "num_runs": stat.num_runs,
        "values": list(stat.values),
    }


def _statistic_from_dict(data: dict) -> SweepStatistic:
    return SweepStatistic(
        mean=float(data["mean"]),
        std=float(data["std"]),
        half_width=float(data["half_width"]),
        num_runs=int(data["num_runs"]),
        values=tuple(float(v) for v in data.get("values", ())),
    )


def sweep_document(
    points: Sequence[SweepPoint],
    config: ReplicationConfig | None = None,
    title: str = "",
) -> dict:
    """The JSON document form of a sweep (what :func:`save_sweep` writes)."""
    return {
        "schema": _SCHEMA,
        "title": title,
        "config": None
        if config is None
        else {
            "measured_duration": config.measured_duration,
            "warmup": config.warmup,
            "seeds": list(config.seeds),
        },
        "points": [
            {
                "load": point.load,
                "erlang_bound": point.erlang_bound,
                "blocking": {
                    name: statistic_to_dict(stat)
                    for name, stat in point.blocking.items()
                },
            }
            for point in points
        ],
    }


def save_sweep(
    path: str | Path,
    points: Sequence[SweepPoint],
    config: ReplicationConfig | None = None,
    title: str = "",
) -> None:
    """Write a sweep to ``path`` as JSON (parents must exist)."""
    document = sweep_document(points, config, title)
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True))


def load_sweep(path: str | Path) -> tuple[list[SweepPoint], ReplicationConfig | None, str]:
    """Read a sweep written by :func:`save_sweep`.

    Returns ``(points, config, title)``; the config is ``None`` when the
    file was saved without one.  Raises ``ValueError`` on schema mismatch.
    """
    document = json.loads(Path(path).read_text())
    if document.get("schema") != _SCHEMA:
        raise ValueError(
            f"unrecognized sweep file schema {document.get('schema')!r}; "
            f"expected {_SCHEMA!r}"
        )
    points = []
    for entry in document["points"]:
        point = SweepPoint(load=float(entry["load"]))
        bound = entry.get("erlang_bound")
        point.erlang_bound = None if bound is None else float(bound)
        point.blocking = {
            name: _statistic_from_dict(stat)
            for name, stat in entry["blocking"].items()
        }
        points.append(point)
    config = None
    if document.get("config"):
        raw = document["config"]
        config = ReplicationConfig(
            measured_duration=float(raw["measured_duration"]),
            warmup=float(raw["warmup"]),
            seeds=tuple(int(s) for s in raw["seeds"]),
        )
    return points, config, str(document.get("title", ""))
