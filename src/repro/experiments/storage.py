"""JSON persistence for experiment outputs.

Sweeps take minutes at paper fidelity; persisting them lets the CLI and
notebooks regenerate reports without re-simulating.  The format is plain
JSON — one document per sweep — with enough metadata (schema version,
config, provenance) to refuse incompatible files instead of misreading
them.

Documents are now ``repro-sweep-v2``: they carry a provenance block (the
package version that produced them plus the canonical hash of the
replication config, via :mod:`repro.lab.hashing`) so :func:`load_sweep` can
*warn* when a file was produced by a different code version or under a
different config than its embedded one claims — a drifted sweep loads, but
never silently.  Legacy ``v1`` files pass through the lab store's migration
shim (:func:`repro.lab.store.migrate_sweep_document`) and load without a
provenance check.  Per-replication caching has moved to the lab's
content-addressed store; these flat documents remain the exchange format
for aggregated sweeps.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Sequence

from ..sim.metrics import SweepStatistic
from .runner import ReplicationConfig, SweepPoint

__all__ = [
    "save_sweep",
    "load_sweep",
    "sweep_document",
    "statistic_to_dict",
    "ProvenanceWarning",
]

_SCHEMA = "repro-sweep-v2"


class ProvenanceWarning(UserWarning):
    """A sweep file's recorded provenance disagrees with this environment."""


def statistic_to_dict(stat: SweepStatistic) -> dict:
    """JSON-ready form of one aggregate statistic."""
    return {
        "mean": stat.mean,
        "std": stat.std,
        "half_width": stat.half_width,
        "num_runs": stat.num_runs,
        "values": list(stat.values),
    }


def _statistic_from_dict(data: dict) -> SweepStatistic:
    return SweepStatistic(
        mean=float(data["mean"]),
        std=float(data["std"]),
        half_width=float(data["half_width"]),
        num_runs=int(data["num_runs"]),
        values=tuple(float(v) for v in data.get("values", ())),
    )


def _config_dict(config: ReplicationConfig) -> dict:
    return {
        "measured_duration": config.measured_duration,
        "warmup": config.warmup,
        "seeds": list(config.seeds),
    }


def _config_hash(config: ReplicationConfig) -> str:
    from ..lab.hashing import content_hash

    return content_hash(_config_dict(config))


def _provenance(config: ReplicationConfig | None) -> dict:
    from ..lab.store import repro_version

    return {
        "repro_version": repro_version(),
        "config_hash": None if config is None else _config_hash(config),
    }


def sweep_document(
    points: Sequence[SweepPoint],
    config: ReplicationConfig | None = None,
    title: str = "",
) -> dict:
    """The JSON document form of a sweep (what :func:`save_sweep` writes)."""
    return {
        "schema": _SCHEMA,
        "title": title,
        "provenance": _provenance(config),
        "config": None if config is None else _config_dict(config),
        "points": [
            {
                "load": point.load,
                "erlang_bound": point.erlang_bound,
                "blocking": {
                    name: statistic_to_dict(stat)
                    for name, stat in point.blocking.items()
                },
            }
            for point in points
        ],
    }


def save_sweep(
    path: str | Path,
    points: Sequence[SweepPoint],
    config: ReplicationConfig | None = None,
    title: str = "",
) -> None:
    """Write a sweep to ``path`` as JSON (parents must exist)."""
    document = sweep_document(points, config, title)
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True))


def _check_provenance(document: dict, path: str | Path) -> None:
    """Warn (never fail) when a v2 file's provenance doesn't match us."""
    from ..lab.store import repro_version

    provenance = document.get("provenance")
    if not provenance:  # migrated v1 file: nothing recorded, nothing to check
        return
    recorded = provenance.get("repro_version")
    current = repro_version()
    if recorded is not None and recorded != current:
        warnings.warn(
            f"sweep file {path} was produced by repro {recorded}, but repro "
            f"{current} is loading it; regenerate if results look off",
            ProvenanceWarning,
            stacklevel=3,
        )
    recorded_hash = provenance.get("config_hash")
    config = document.get("config")
    if recorded_hash is not None and config is not None:
        actual = _config_hash(
            ReplicationConfig(
                measured_duration=float(config["measured_duration"]),
                warmup=float(config["warmup"]),
                seeds=tuple(int(s) for s in config["seeds"]),
            )
        )
        if actual != recorded_hash:
            warnings.warn(
                f"sweep file {path} embeds a config that no longer matches its "
                "recorded config hash; the file was edited after being saved",
                ProvenanceWarning,
                stacklevel=3,
            )


def load_sweep(path: str | Path) -> tuple[list[SweepPoint], ReplicationConfig | None, str]:
    """Read a sweep written by :func:`save_sweep` (v2, or legacy v1).

    Returns ``(points, config, title)``; the config is ``None`` when the
    file was saved without one.  Raises ``ValueError`` on schema mismatch;
    emits :class:`ProvenanceWarning` when the file records a different
    package version or a config hash that no longer matches its content.
    """
    from ..lab.store import migrate_sweep_document

    document = migrate_sweep_document(json.loads(Path(path).read_text()))
    _check_provenance(document, path)
    points = []
    for entry in document["points"]:
        point = SweepPoint(load=float(entry["load"]))
        bound = entry.get("erlang_bound")
        point.erlang_bound = None if bound is None else float(bound)
        point.blocking = {
            name: _statistic_from_dict(stat)
            for name, stat in entry["blocking"].items()
        }
        points.append(point)
    config = None
    if document.get("config"):
        raw = document["config"]
        config = ReplicationConfig(
            measured_duration=float(raw["measured_duration"]),
            warmup=float(raw["warmup"]),
            seeds=tuple(int(s) for s in raw["seeds"]),
        )
    return points, config, str(document.get("title", ""))
