"""Experiment harness: replication runner, figure/table regeneration, ablations."""

from .ablations import estimator_ablation, protection_sensitivity
from .convergence import seed_convergence, warmup_sensitivity
from .optimal_r import empirical_optimal_reservation, uniform_reservation_sweep
from .storage import load_sweep, save_sweep
from .figures import (
    NSFNET_LOAD_MULTIPLIERS,
    QUADRANGLE_LOADS,
    figure2_protection_levels,
    nsfnet_sweep,
    quadrangle_sweep,
)
from .registry import EXPERIMENTS, Experiment, list_experiments, run_experiment
from .report import format_sweep, format_table, format_table1
from .robustness import forecast_error_sweep, perturbed_traffic
from .runner import (
    PAPER_CONFIG,
    ReplicationConfig,
    ReplicationOutcome,
    SeedStatus,
    SweepPoint,
    compare_policies,
    run_replications,
    run_replications_detailed,
)
from .tables import Table1Row, regenerate_table1, table1_agreement

__all__ = [
    "PAPER_CONFIG",
    "ReplicationConfig",
    "SweepPoint",
    "compare_policies",
    "run_replications",
    "run_replications_detailed",
    "ReplicationOutcome",
    "SeedStatus",
    "figure2_protection_levels",
    "quadrangle_sweep",
    "nsfnet_sweep",
    "QUADRANGLE_LOADS",
    "NSFNET_LOAD_MULTIPLIERS",
    "Table1Row",
    "regenerate_table1",
    "table1_agreement",
    "protection_sensitivity",
    "seed_convergence",
    "warmup_sensitivity",
    "empirical_optimal_reservation",
    "uniform_reservation_sweep",
    "load_sweep",
    "save_sweep",
    "estimator_ablation",
    "format_table",
    "format_sweep",
    "format_table1",
    "EXPERIMENTS",
    "Experiment",
    "list_experiments",
    "run_experiment",
    "forecast_error_sweep",
    "perturbed_traffic",
]
