"""Registry of the paper's experiments, keyed by DESIGN.md identifiers.

Maps each experiment id (``FIG3``, ``TAB1``, ``EXP-FAIL``, ...) to a
self-contained regeneration function returning a printable report, so the
CLI (``repro-routing experiment FIG3``) and scripts can reproduce any single
artifact without knowing which module implements it.  The benchmark files
under ``benchmarks/`` exercise the same code paths with assertions attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .figures import figure2_protection_levels, nsfnet_sweep, quadrangle_sweep
from .generalization import general_mesh_comparison
from .optimal_r import empirical_optimal_reservation
from .prose import fairness_comparison, link_failure_comparison, minloss_comparison
from .robustness import dynamic_failure_comparison, forecast_error_sweep
from .report import format_sweep, format_table, format_table1
from .runner import PAPER_CONFIG, ReplicationConfig
from .tables import regenerate_table1, table1_agreement

__all__ = [
    "Experiment",
    "EXPERIMENTS",
    "run_experiment",
    "run_experiment_json",
    "experiment_job_graph",
    "lab_runnable_experiments",
    "list_experiments",
    "run_all",
]


@dataclass(frozen=True)
class Experiment:
    """One reproducible artifact: id, description, and regeneration logic.

    ``run`` renders the printable report; ``data``, where provided, computes
    the same artifact as a JSON-ready dict for machine consumption (the
    CLI's ``experiment --json``).  Experiments without a ``data`` callable
    fall back to shipping the rendered report inside the JSON envelope.

    ``jobs``, where provided, decomposes the experiment into its lab job
    graph: a list of ``(Scenario, policies)`` studies covering every
    replication the artifact needs.  ``repro-routing lab run --experiment
    ID`` runs that graph through the content-addressed store, so the
    sweep's replications are checkpointed per seed, resumable, and shared
    with any other study touching the same points.
    """

    id: str
    title: str
    bench: str
    run: Callable[[ReplicationConfig], str]
    data: Callable[[ReplicationConfig], dict] | None = None
    jobs: Callable[[], list[tuple["Scenario", tuple[str, ...]]]] | None = None


_SWEEP_POLICIES = ("single-path", "uncontrolled", "controlled")


def _fig3_jobs() -> list:
    from ..api import Scenario
    from .figures import QUADRANGLE_LOADS

    return [
        (Scenario(topology="quadrangle", traffic=float(per_pair)),
         _SWEEP_POLICIES)
        for per_pair in QUADRANGLE_LOADS
    ]


def _nsfnet_jobs(load_values, max_hops=None, include_ott_krishnan=False) -> list:
    from ..api import Scenario

    policies = _SWEEP_POLICIES + (("ott-krishnan",) if include_ott_krishnan else ())
    return [
        (Scenario(topology="nsfnet", traffic="nominal",
                  load_scale=load / 10.0, max_hops=max_hops),
         policies)
        for load in load_values
    ]


def _fig6_jobs() -> list:
    from .figures import NSFNET_LOAD_MULTIPLIERS

    return _nsfnet_jobs(NSFNET_LOAD_MULTIPLIERS)


def _h6_jobs() -> list:
    from .figures import NSFNET_LOAD_MULTIPLIERS

    return _nsfnet_jobs(NSFNET_LOAD_MULTIPLIERS, max_hops=6)


def _ott_krishnan_jobs() -> list:
    return _nsfnet_jobs((10.0, 12.0), include_ott_krishnan=True)


def _fig2(config: ReplicationConfig) -> str:
    curves = figure2_protection_levels()
    loads = curves[2][0]
    rows = [
        [int(load)] + [int(curves[h][1][i]) for h in (2, 6, 120)]
        for i, load in enumerate(loads)
        if load % 10 == 0
    ]
    return "Figure 2: r vs Lambda (C=100)\n" + format_table(
        ["Lambda", "r(H=2)", "r(H=6)", "r(H=120)"], rows
    )


def _tab1(config: ReplicationConfig) -> str:
    rows = regenerate_table1()
    agreement = table1_agreement(rows)
    return (
        "Table 1: NSFNet under the calibrated nominal load\n"
        + format_table1(rows)
        + f"\nagreement: loads {agreement['load_match_fraction']:.0%}, "
        f"protection {agreement['protection_match_fraction']:.0%}"
    )


def _fig3(config: ReplicationConfig) -> str:
    points = quadrangle_sweep(config=config)
    return format_sweep(points, "Figures 3/4: quadrangle blocking vs per-pair load")


def _fig6(config: ReplicationConfig) -> str:
    points = nsfnet_sweep(config=config)
    return format_sweep(points, "Figures 6/7: NSFNet blocking vs load (nominal=10), H=11")


def _h6(config: ReplicationConfig) -> str:
    points = nsfnet_sweep(max_hops=6, config=config)
    return format_sweep(points, "Section 4.2.2: NSFNet with H=6")


def _ott_krishnan(config: ReplicationConfig) -> str:
    points = nsfnet_sweep(
        load_values=(10.0, 12.0), config=config, include_ott_krishnan=True
    )
    return format_sweep(points, "Section 4.2: Ott-Krishnan comparator on NSFNet")


def _failures(config: ReplicationConfig) -> str:
    outcome = link_failure_comparison(config)
    rows = [
        [name, stats["single-path"].mean, stats["uncontrolled"].mean,
         stats["controlled"].mean]
        for name, stats in outcome.items()
    ]
    return "Section 4.2.2: link failures, NSFNet at load 12\n" + format_table(
        ["scenario", "single-path", "uncontrolled", "controlled"], rows
    )


def _fairness(config: ReplicationConfig) -> str:
    reports = fairness_comparison(config)
    rows = [
        [name, r.mean, r.coefficient_of_variation, r.gini, r.max]
        for name, r in reports.items()
    ]
    return "Section 4.2.2: per-O-D blocking skew, NSFNet H=6, load 11\n" + format_table(
        ["scheme", "mean", "cov", "gini", "max"], rows
    )


def _minloss(config: ReplicationConfig) -> str:
    stats, solution = minloss_comparison(config)
    rows = [[name, stat.mean, stat.half_width] for name, stat in stats.items()]
    return (
        "Section 4.2.2: min-link-loss vs min-hop primaries, NSFNet load 11\n"
        + format_table(["policy", "blocking", "ci"], rows)
        + f"\nflow deviation: {solution.bifurcated_pairs()} bifurcated pairs, "
        f"gap {solution.optimality_gap:.3f}"
    )


def _bistability(config: ReplicationConfig) -> str:
    from ..analysis.bistability import find_fixed_points
    from ..core.protection import min_protection_level

    rows = []
    for load in (90.0, 96.0, 100.0, 104.0, 108.0):
        unprotected = find_fixed_points(load, 120, 0, max_attempts=5)
        level = min_protection_level(load, 120, 2)
        protected = find_fixed_points(load, 120, level, max_attempts=5)
        rows.append(
            [load, len(unprotected), unprotected[-1].blocking, level,
             protected[-1].blocking]
        )
    return (
        "Mean-field bistability, C=120, 5 alternate attempts\n"
        + format_table(["load", "#fp(r=0)", "worst B(r=0)", "r(Eq15)", "B(r)"], rows)
    )


def _ablation_r(config: ReplicationConfig) -> str:
    from ..topology.nsfnet import nsfnet_backbone
    from ..topology.paths import build_path_table
    from ..traffic.calibration import nsfnet_nominal_traffic
    from .ablations import protection_sensitivity

    network = nsfnet_backbone()
    table = build_path_table(network)
    traffic = nsfnet_nominal_traffic().scaled(1.2)
    outcome = protection_sensitivity(
        network, table, traffic, offsets=(-100, -2, 0, 2, 4), config=config
    )
    rows = [[offset, stat.mean, stat.half_width] for offset, stat in outcome.items()]
    return "Ablation: protection-level offsets, NSFNet load 12\n" + format_table(
        ["r offset", "blocking", "ci"], rows
    )


def _ablation_estimator(config: ReplicationConfig) -> str:
    from ..topology.nsfnet import nsfnet_backbone
    from ..topology.paths import build_path_table
    from ..traffic.calibration import nsfnet_nominal_traffic
    from .ablations import estimator_ablation

    network = nsfnet_backbone()
    table = build_path_table(network)
    traffic = nsfnet_nominal_traffic().scaled(1.1)
    outcome = estimator_ablation(network, table, traffic, config=config)
    rows = [
        ["known", outcome["known"].mean, outcome["known"].half_width],
        ["estimated", outcome["estimated"].mean, outcome["estimated"].half_width],
    ]
    return (
        "Ablation: known vs estimated primary loads, NSFNet load 11\n"
        + format_table(["variant", "blocking", "ci"], rows)
        + f"\nmax load error {outcome['max_load_error']:.2f} E, "
        f"max protection gap {outcome['max_protection_gap']}"
    )


def _optimal_r(config: ReplicationConfig) -> str:
    from ..topology.generators import quadrangle
    from ..topology.paths import build_path_table
    from ..traffic.generators import uniform_traffic

    network = quadrangle(100)
    table = build_path_table(network)
    sections = []
    for per_pair in (90.0, 95.0):
        result = empirical_optimal_reservation(
            network, table, uniform_traffic(4, per_pair),
            (0, 2, 4, 6, 8, 11, 15, 25, 100), config,
        )
        rows = [[r, s.mean] for r, s in sorted(result["sweep"].items())]
        sections.append(
            f"Uniform reservation sweep, quadrangle {per_pair:g} E\n"
            + format_table(["r", "blocking"], rows)
            + f"\nbest r = {result['best_r']}, Eq-15 r = {result['equation15_r']}, "
            f"penalty = {result['penalty']:.4f}"
        )
    return "\n\n".join(sections)


def _robustness(config: ReplicationConfig) -> str:
    from ..topology.nsfnet import nsfnet_backbone
    from ..topology.paths import build_path_table
    from ..traffic.calibration import nsfnet_nominal_traffic

    network = nsfnet_backbone()
    table = build_path_table(network)
    outcome = forecast_error_sweep(
        network, table, nsfnet_nominal_traffic(), sigmas=(0.0, 0.5, 1.0), config=config
    )
    rows = [
        [sigma, stats["single-path"].mean, stats["uncontrolled"].mean,
         stats["controlled"].mean]
        for sigma, stats in outcome.items()
    ]
    return "Forecast-error sweep, NSFNet engineered for nominal\n" + format_table(
        ["sigma", "single-path", "uncontrolled", "controlled"], rows
    )


def _dynamic_failures(config: ReplicationConfig) -> str:
    reports = dynamic_failure_comparison(config=config)
    rows = [
        [name, r.blocking.mean, r.drop_rate.mean, r.availability.mean,
         r.time_to_recover.mean]
        for name, r in reports.items()
    ]
    return (
        "Dynamic failure: NSFNet load 12, link 2<->3 fails mid-run and recovers\n"
        + format_table(
            ["policy", "blocking", "dropped", "availability", "t-recover"], rows
        )
    )


def _sweep_data(points, config: ReplicationConfig, title: str) -> dict:
    from .storage import sweep_document

    return sweep_document(points, config, title)


def _fig3_data(config: ReplicationConfig) -> dict:
    return _sweep_data(
        quadrangle_sweep(config=config), config,
        "Figures 3/4: quadrangle blocking vs per-pair load",
    )


def _fig6_data(config: ReplicationConfig) -> dict:
    return _sweep_data(
        nsfnet_sweep(config=config), config,
        "Figures 6/7: NSFNet blocking vs load (nominal=10), H=11",
    )


def _h6_data(config: ReplicationConfig) -> dict:
    return _sweep_data(
        nsfnet_sweep(max_hops=6, config=config), config,
        "Section 4.2.2: NSFNet with H=6",
    )


def _ott_krishnan_data(config: ReplicationConfig) -> dict:
    return _sweep_data(
        nsfnet_sweep(load_values=(10.0, 12.0), config=config,
                     include_ott_krishnan=True),
        config, "Section 4.2: Ott-Krishnan comparator on NSFNet",
    )


def _tab1_data(config: ReplicationConfig) -> dict:
    rows = regenerate_table1()
    agreement = table1_agreement(rows)
    return {
        "rows": [
            {
                "link": list(row.link), "capacity": row.capacity,
                "load": row.load, "paper_load": row.paper_load,
                "r_h6": row.r_h6, "paper_r_h6": row.paper_r_h6,
                "r_h11": row.r_h11, "paper_r_h11": row.paper_r_h11,
            }
            for row in rows
        ],
        "agreement": agreement,
    }


def _dynamic_failures_data(config: ReplicationConfig) -> dict:
    from .storage import statistic_to_dict

    reports = dynamic_failure_comparison(config=config)
    return {
        "policies": {
            name: {
                "blocking": statistic_to_dict(r.blocking),
                "drop_rate": statistic_to_dict(r.drop_rate),
                "availability": statistic_to_dict(r.availability),
                "time_to_recover": statistic_to_dict(r.time_to_recover),
            }
            for name, r in reports.items()
        }
    }


def _adversarial_data(config: ReplicationConfig) -> dict:
    from .adversarial import adversarial_load_study

    return adversarial_load_study(config)


def _adversarial(config: ReplicationConfig) -> str:
    document = _adversarial_data(config)
    rows = [
        [
            name,
            entry["static_blocking"]["mean"],
            entry["adaptive_blocking"]["mean"],
            entry["erlang_bound"],
            entry["serve"]["recompute_on"]["recompute_count"],
            entry["serve"]["recompute_on"]["time_to_reconverge"],
        ]
        for name, entry in document["workloads"].items()
    ]
    return (
        "EXP-ADV: time-varying and adversarial workloads, NSFNet load 11\n"
        + format_table(
            ["workload", "static B", "adaptive B", "Erlang bound",
             "recomputes", "t-reconverge"],
            rows,
        )
    )


def _control_data(config: ReplicationConfig) -> dict:
    from .control import control_loop_study

    return control_loop_study(config)


def _control(config: ReplicationConfig) -> str:
    document = _control_data(config)
    rows = [
        [
            name,
            entry["static_blocking"]["mean"],
            entry["ewma_blocking"]["mean"],
            entry["online_blocking"]["mean"],
            entry["hindsight_blocking"]["mean"],
            "-" if entry["gap_closed"] is None
            else f"{entry['gap_closed']:.0%}",
            entry["clamp_violations"],
        ]
        for name, entry in document["workloads"].items()
    ]
    return (
        "EXP-CTL: online protection-level control, NSFNet load 11\n"
        + format_table(
            ["workload", "static B", "ewma B", "online B", "hindsight B",
             "gap closed", "clamp viol"],
            rows,
        )
    )


def _adv_jobs() -> list:
    from .adversarial import adversarial_load_scenarios

    return adversarial_load_scenarios()


def _general_mesh(config: ReplicationConfig) -> str:
    outcome = general_mesh_comparison(config)
    rows = [
        [name, stats["single-path"].mean, stats["uncontrolled"].mean,
         stats["controlled"].mean]
        for name, stats in outcome.items()
    ]
    return "General meshes, gravity demand\n" + format_table(
        ["mesh", "single-path", "uncontrolled", "controlled"], rows
    )


EXPERIMENTS: dict[str, Experiment] = {
    experiment.id: experiment
    for experiment in (
        Experiment("FIG2", "protection level vs primary load",
                   "bench_fig2_protection_levels.py", _fig2),
        Experiment("TAB1", "NSFNet loads and protection levels",
                   "bench_table1_protection_levels.py", _tab1, _tab1_data),
        Experiment("FIG3", "quadrangle blocking sweep (also Figure 4)",
                   "bench_fig3_quadrangle.py", _fig3, _fig3_data, _fig3_jobs),
        Experiment("FIG6", "NSFNet blocking sweep, H=11 (also Figure 7)",
                   "bench_fig6_nsfnet.py", _fig6, _fig6_data, _fig6_jobs),
        Experiment("EXP-H6", "NSFNet blocking sweep, H=6",
                   "bench_h6_restriction.py", _h6, _h6_data, _h6_jobs),
        Experiment("EXP-OK", "Ott-Krishnan shadow-price comparator",
                   "bench_ott_krishnan.py", _ott_krishnan, _ott_krishnan_data,
                   _ott_krishnan_jobs),
        Experiment("EXP-FAIL", "link failures preserve the ordering",
                   "bench_link_failures.py", _failures),
        Experiment("EXP-DYNFAIL", "mid-run link failure, drop and recovery",
                   "bench_dynamic_failures.py", _dynamic_failures,
                   _dynamic_failures_data),
        Experiment("EXP-FAIR", "per-O-D blocking skew",
                   "bench_fairness_skew.py", _fairness),
        Experiment("EXP-MINLOSS", "min-link-loss primary paths",
                   "bench_minloss_primaries.py", _minloss),
        Experiment("EXT-BIST", "mean-field bistability analysis",
                   "bench_bistability.py", _bistability),
        Experiment("ABL-R", "protection-level robustness",
                   "bench_ablation_r_sensitivity.py", _ablation_r),
        Experiment("ABL-EST", "known vs estimated primary loads",
                   "bench_ablation_estimator.py", _ablation_estimator),
        Experiment("EXP-MG-SIM", "Equation 15 vs empirical optimal reservation",
                   "bench_optimal_reservation.py", _optimal_r),
        Experiment("EXP-ROBUST", "insensitivity to traffic-forecast error",
                   "bench_forecast_robustness.py", _robustness),
        Experiment("EXT-GEN", "general-mesh generality check",
                   "bench_general_mesh.py", _general_mesh),
        Experiment("EXP-ADV", "adversarial & time-varying workloads vs the bound",
                   "bench_adversarial_load.py", _adversarial, _adversarial_data,
                   _adv_jobs),
        Experiment("EXP-CTL", "online protection-level control loop",
                   "bench_control_loop.py", _control, _control_data),
    )
}

#: Alternate spellings accepted by the CLI (``experiment adversarial-load``).
ALIASES: dict[str, str] = {
    "ADVERSARIAL-LOAD": "EXP-ADV",
    "CONTROL": "EXP-CTL",
    "CONTROL-LOOP": "EXP-CTL",
}


def _resolve(experiment_id: str) -> str:
    """Canonical experiment id, or raise ``KeyError`` listing what exists."""
    key = experiment_id.upper()
    key = ALIASES.get(key, key)
    if key not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
    return key


def lab_runnable_experiments() -> tuple[str, ...]:
    """Ids of experiments that decompose into lab job graphs."""
    return tuple(
        experiment.id for experiment in EXPERIMENTS.values()
        if experiment.jobs is not None
    )


def experiment_job_graph(experiment_id: str) -> list:
    """The lab job graph of one experiment: ``[(Scenario, policies), ...]``.

    Raises ``KeyError`` for unknown ids and ``ValueError`` for experiments
    that don't decompose into replication studies (analytic artifacts like
    FIG2/EXT-BIST need no simulation, so there is nothing to cache).
    """
    key = _resolve(experiment_id)
    experiment = EXPERIMENTS[key]
    if experiment.jobs is None:
        runnable = ", ".join(lab_runnable_experiments())
        raise ValueError(
            f"experiment {key} has no lab job graph; lab-runnable: {runnable}"
        )
    return experiment.jobs()


def list_experiments() -> str:
    """One line per registered experiment."""
    rows = [
        [experiment.id, experiment.title, experiment.bench]
        for experiment in EXPERIMENTS.values()
    ]
    return format_table(["id", "title", "benchmark"], rows)


def run_experiment(
    experiment_id: str, config: ReplicationConfig = PAPER_CONFIG
) -> str:
    """Regenerate one experiment and return its printable report."""
    return EXPERIMENTS[_resolve(experiment_id)].run(config)


def run_experiment_json(
    experiment_id: str, config: ReplicationConfig = PAPER_CONFIG
) -> dict:
    """Regenerate one experiment as a JSON-ready document.

    Experiments with a structured ``data`` callable return their numbers
    under ``"data"``; the rest carry the rendered report under ``"report"``
    so the envelope is uniform either way.
    """
    experiment = EXPERIMENTS[_resolve(experiment_id)]
    document = {
        "schema": "repro-experiment-v1",
        "id": experiment.id,
        "title": experiment.title,
        "bench": experiment.bench,
        "config": {
            "measured_duration": config.measured_duration,
            "warmup": config.warmup,
            "seeds": list(config.seeds),
        },
        "data": None,
        "report": None,
    }
    if experiment.data is not None:
        document["data"] = experiment.data(config)
    else:
        document["report"] = experiment.run(config)
    return document


def run_all(config: ReplicationConfig = PAPER_CONFIG) -> str:
    """Regenerate every registered experiment into one markdown report."""
    sections = [
        "# Regenerated paper artifacts",
        "",
        f"Replications: {len(config.seeds)} seeds x "
        f"{config.measured_duration:g} measured time units "
        f"(+{config.warmup:g} warm-up).",
        "",
    ]
    for experiment in EXPERIMENTS.values():
        sections.append(f"## {experiment.id} — {experiment.title}")
        sections.append("")
        sections.append("```")
        sections.append(experiment.run(config))
        sections.append("```")
        sections.append("")
    return "\n".join(sections)
