"""Generality check: the control scheme on arbitrary meshes.

The paper's title claims *general-mesh* applicability; its evaluation shows
two topologies.  This module runs the three routing schemes on a family of
synthetic meshes (torus, Waxman internetworks, dense random meshes) under
skewed gravity traffic, checking the two structural claims on each:

* controlled alternate routing never does (statistically) worse than
  single-path routing — the Theorem-1 guarantee is topology-free;
* wherever uncontrolled routing beats single-path, controlled routing keeps
  (most of) that win.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..routing.alternate import (
    ControlledAlternateRouting,
    UncontrolledAlternateRouting,
)
from ..routing.single_path import SinglePathRouting
from ..sim.metrics import SweepStatistic
from ..topology.generators import random_mesh, torus, waxman_mesh
from ..topology.graph import Network
from ..topology.paths import build_path_table
from ..traffic.demand import primary_link_loads
from ..traffic.generators import gravity_traffic
from .runner import PAPER_CONFIG, ReplicationConfig, compare_policies

__all__ = ["MeshCase", "STANDARD_MESH_CASES", "general_mesh_comparison"]


@dataclass(frozen=True)
class MeshCase:
    """One synthetic scenario: a named topology plus an offered load."""

    name: str
    network: Network
    total_erlangs: float

    def traffic(self):
        # Skewed gravity demand: node weight grows with index, so the mesh
        # sees the "wide disparities" the paper's NSFNet matrix exhibits.
        weights = [1.0 + 0.35 * node for node in self.network.nodes()]
        return gravity_traffic(weights, total=self.total_erlangs)


def _standard_cases() -> tuple[MeshCase, ...]:
    return (
        MeshCase("torus-3x3", torus(3, 3, capacity=40), total_erlangs=460.0),
        MeshCase("waxman-10", waxman_mesh(10, capacity=40, seed=3), total_erlangs=420.0),
        MeshCase("random-8+6", random_mesh(8, 6, capacity=40, seed=1), total_erlangs=400.0),
    )


STANDARD_MESH_CASES: tuple[MeshCase, ...] = _standard_cases()


def general_mesh_comparison(
    config: ReplicationConfig = PAPER_CONFIG,
    cases: tuple[MeshCase, ...] = STANDARD_MESH_CASES,
    max_hops: int = 5,
) -> dict[str, dict[str, SweepStatistic]]:
    """Run the three schemes on every mesh case; returns per-case statistics.

    Alternate paths are capped at ``max_hops`` hops (the denser synthetic
    meshes have exponentially many loop-free paths, unlike the paper's
    sparse NSFNet, so a hop cap is the realistic configuration — and lowers
    the protection levels per Section 3.2).
    """
    outcome: dict[str, dict[str, SweepStatistic]] = {}
    for case in cases:
        table = build_path_table(case.network, max_hops=max_hops)
        traffic = case.traffic()
        loads = primary_link_loads(case.network, table, traffic)
        policies = {
            "single-path": SinglePathRouting(case.network, table),
            "uncontrolled": UncontrolledAlternateRouting(case.network, table),
            "controlled": ControlledAlternateRouting(case.network, table, loads),
        }
        outcome[case.name] = compare_policies(case.network, policies, traffic, config)
    return outcome
