"""Regeneration of the paper's Table 1 and related tabular artifacts.

Table 1 lists, for each of the NSFNet model's thirty directed links, its
capacity, primary load under the nominal traffic matrix, and the protection
levels for ``H = 6`` and ``H = 11``.  We regenerate all three columns from
the calibrated traffic matrix and report agreement with the paper's printed
values (the handful of off-by-one-or-two ``r`` entries trace to the paper
rounding its printed ``Lambda`` column to integers).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.protection import min_protection_level
from ..topology.nsfnet import (
    NSFNET_TABLE1_LOADS,
    NSFNET_TABLE1_PROTECTION,
    nsfnet_backbone,
)
from ..topology.paths import build_path_table
from ..traffic.calibration import nsfnet_nominal_traffic
from ..traffic.demand import primary_link_loads

__all__ = ["Table1Row", "regenerate_table1", "table1_agreement"]


@dataclass(frozen=True)
class Table1Row:
    """One directed link's row of Table 1, ours vs the paper's."""

    link: tuple[int, int]
    capacity: int
    load: float
    paper_load: int
    r_h6: int
    paper_r_h6: int
    r_h11: int
    paper_r_h11: int

    @property
    def load_matches(self) -> bool:
        """Does our load round to the paper's printed integer?"""
        return round(self.load) == self.paper_load

    @property
    def protection_matches(self) -> bool:
        return self.r_h6 == self.paper_r_h6 and self.r_h11 == self.paper_r_h11


def regenerate_table1() -> list[Table1Row]:
    """Recompute every row of Table 1 from the calibrated nominal matrix."""
    network = nsfnet_backbone()
    table = build_path_table(network)
    traffic = nsfnet_nominal_traffic()
    loads = primary_link_loads(network, table, traffic)
    rows: list[Table1Row] = []
    for link in network.links:
        load = float(loads[link.index])
        paper_r6, paper_r11 = NSFNET_TABLE1_PROTECTION[link.endpoints]
        rows.append(
            Table1Row(
                link=link.endpoints,
                capacity=link.capacity,
                load=load,
                paper_load=NSFNET_TABLE1_LOADS[link.endpoints],
                r_h6=min_protection_level(load, link.capacity, 6),
                paper_r_h6=paper_r6,
                r_h11=min_protection_level(load, link.capacity, 11),
                paper_r_h11=paper_r11,
            )
        )
    return rows


def table1_agreement(rows: list[Table1Row] | None = None) -> dict[str, float]:
    """Agreement summary: fraction of matching loads and protection levels."""
    if rows is None:
        rows = regenerate_table1()
    total = len(rows)
    loads_ok = sum(1 for row in rows if row.load_matches)
    protection_ok = sum(1 for row in rows if row.protection_matches)
    worst_gap = max(
        max(abs(row.r_h6 - row.paper_r_h6), abs(row.r_h11 - row.paper_r_h11))
        for row in rows
    )
    return {
        "rows": float(total),
        "load_match_fraction": loads_ok / total,
        "protection_match_fraction": protection_ok / total,
        "worst_protection_gap": float(worst_gap),
    }
