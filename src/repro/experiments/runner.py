"""Experiment orchestration: replications, policy comparisons, load sweeps.

The paper's methodology (Section 4): call-by-call simulation for 100 time
units after a 10-unit warm-up from an idle network, repeated for 10 seeds
per traffic matrix, with every algorithm replaying identical arrivals and
holding times.  :class:`ReplicationConfig` captures those knobs (defaults
are the paper's); the helpers run one policy or a labelled set of policies
over the shared traces and aggregate network blocking across seeds.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..routing.base import RoutingPolicy
from ..sim.metrics import SimulationResult, SweepStatistic, aggregate
from ..sim.simulator import simulate
from ..sim.trace import ArrivalTrace, generate_trace
from ..topology.graph import Network
from ..traffic.matrix import TrafficMatrix

__all__ = ["ReplicationConfig", "PAPER_CONFIG", "run_replications", "compare_policies"]


def _replication_worker(payload) -> SimulationResult:
    """Run one seed in a worker process (module-level for picklability)."""
    network, policy, traffic, duration, warmup, seed = payload
    trace = generate_trace(traffic, duration, seed)
    return simulate(network, policy, trace, warmup)


@dataclass(frozen=True)
class ReplicationConfig:
    """Replication parameters; defaults reproduce the paper's setup."""

    measured_duration: float = 100.0
    warmup: float = 10.0
    seeds: tuple[int, ...] = tuple(range(10))

    @property
    def duration(self) -> float:
        """Total simulated time, warm-up included."""
        return self.measured_duration + self.warmup

    def scaled(self, duration_factor: float = 1.0, num_seeds: int | None = None) -> "ReplicationConfig":
        """A cheaper (or heavier) variant for quick runs and benchmarks."""
        seeds = self.seeds if num_seeds is None else tuple(range(num_seeds))
        return ReplicationConfig(
            measured_duration=self.measured_duration * duration_factor,
            warmup=self.warmup,
            seeds=seeds,
        )


PAPER_CONFIG = ReplicationConfig()


def run_replications(
    network: Network,
    policy: RoutingPolicy,
    traffic: TrafficMatrix,
    config: ReplicationConfig = PAPER_CONFIG,
    traces: Sequence[ArrivalTrace] | None = None,
    parallel: bool = False,
    max_workers: int | None = None,
) -> tuple[SweepStatistic, list[SimulationResult]]:
    """Run one policy over all seeds; returns aggregate blocking + raw results.

    Pre-generated ``traces`` may be passed to share them across policies
    (``compare_policies`` does); otherwise they are generated per seed.
    ``parallel=True`` fans the seeds out over a process pool — results are
    bit-identical to the serial path (each seed is fully self-contained);
    worth it for paper-fidelity sweeps, overkill for quick runs.
    """
    if parallel and traces is None:
        payloads = [
            (network, policy, traffic, config.duration, config.warmup, seed)
            for seed in config.seeds
        ]
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            results = list(pool.map(_replication_worker, payloads))
    else:
        if traces is None:
            traces = [
                generate_trace(traffic, config.duration, seed) for seed in config.seeds
            ]
        results = [simulate(network, policy, trace, config.warmup) for trace in traces]
    stat = aggregate([result.network_blocking for result in results])
    return stat, results


def compare_policies(
    network: Network,
    policies: Mapping[str, RoutingPolicy],
    traffic: TrafficMatrix,
    config: ReplicationConfig = PAPER_CONFIG,
    parallel: bool = False,
    max_workers: int | None = None,
) -> dict[str, SweepStatistic]:
    """Run several policies on *identical* traces and aggregate each.

    This is the paper's common-random-numbers comparison: differences
    between policies reflect routing decisions only, never sampling noise in
    the arrival processes.  ``parallel=True`` fans seeds over a process pool
    per policy; trace generation is deterministic per seed, so the common-
    random-numbers discipline is preserved (workers rebuild the same traces).
    """
    comparison: dict[str, SweepStatistic] = {}
    if parallel:
        for label, policy in policies.items():
            stat, __ = run_replications(
                network, policy, traffic, config,
                parallel=True, max_workers=max_workers,
            )
            comparison[label] = stat
        return comparison
    traces = [generate_trace(traffic, config.duration, seed) for seed in config.seeds]
    for label, policy in policies.items():
        stat, __ = run_replications(network, policy, traffic, config, traces=traces)
        comparison[label] = stat
    return comparison


@dataclass
class SweepPoint:
    """One load point of a sweep: the x-value plus per-policy statistics."""

    load: float
    blocking: dict[str, SweepStatistic] = field(default_factory=dict)
    erlang_bound: float | None = None
