"""Experiment orchestration: replications, policy comparisons, load sweeps.

The paper's methodology (Section 4): call-by-call simulation for 100 time
units after a 10-unit warm-up from an idle network, repeated for 10 seeds
per traffic matrix, with every algorithm replaying identical arrivals and
holding times.  :class:`ReplicationConfig` captures those knobs (defaults
are the paper's); the helpers run one policy or a labelled set of policies
over the shared traces and aggregate network blocking across seeds.

The parallel path is hardened against misbehaving workers: each seed's
future gets a bounded wait (``seed_timeout``), timed-out or crashed seeds
are retried up to ``max_seed_retries`` times (recycling the pool after a
timeout, since the hung worker still occupies its slot), and if the pool
itself dies (``BrokenProcessPool`` — e.g. a worker was OOM-killed) the
remaining seeds finish serially in-process.  Every seed's fate is recorded
in a :class:`SeedStatus`, and :class:`ReplicationOutcome` carries the full
per-seed report next to the aggregate.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from .._compat import positional_shim, resolve_backend
from ..routing.base import RoutingPolicy
from ..sim.batch import batch_ineligibility, simulate_batch
from ..sim.metrics import SimulationResult, SweepStatistic, aggregate
from ..sim.simulator import simulate
from ..sim.trace import ArrivalTrace, generate_trace
from ..topology.graph import Network
from ..traffic.matrix import TrafficMatrix
from ..traffic.workload import Workload, generate_workload_trace

__all__ = [
    "ReplicationConfig",
    "PAPER_CONFIG",
    "SeedStatus",
    "ReplicationOutcome",
    "run_replications",
    "run_replications_detailed",
    "compare_policies",
]


def _make_trace(
    traffic: TrafficMatrix,
    workload: Workload | None,
    duration: float,
    seed: int,
) -> ArrivalTrace:
    """One seed's arrivals: stationary, or thinned against a workload.

    The single trace-generation choke point for replications — serial path,
    pool workers and the lab scheduler all route through it, so a workload
    changes demand identically everywhere (and ``None`` keeps the
    historical stationary traces bit for bit).
    """
    if workload is None:
        return generate_trace(traffic, duration, seed)
    return generate_workload_trace(traffic, workload, duration, seed)


def _replication_worker(payload) -> SimulationResult:
    """Run one seed in a worker process (module-level for picklability)."""
    network, policy, traffic, duration, warmup, seed = payload
    trace = generate_trace(traffic, duration, seed)
    return simulate(network, policy, trace, warmup)


#: Per-worker-process shared replication context, installed once by the pool
#: initializer.  The network (with its path enumeration), the compiled policy
#: (choices, thresholds, protection tables) and the traffic matrix are pickled
#: once per worker instead of once per seed; payloads shrink to bare seeds.
_WORKER_CONTEXT: dict[str, tuple] = {}


def _install_worker_context(
    network, policy, traffic, duration, warmup, workload=None, backend="auto"
) -> None:
    """Pool initializer: stash the shared (network, policy, ...) context."""
    _WORKER_CONTEXT["shared"] = (
        network, policy, traffic, duration, warmup, workload, backend
    )


def _shared_context_worker(seed: int) -> SimulationResult:
    """Run one seed against the worker-process shared context."""
    (network, policy, traffic, duration, warmup, workload,
     backend) = _WORKER_CONTEXT["shared"]
    trace = _make_trace(traffic, workload, duration, seed)
    return simulate(network, policy, trace, warmup, backend=backend)


def _timed_call(worker: Callable, payload) -> tuple[float, SimulationResult]:
    """Run ``worker(payload)`` and report its in-process wall-clock seconds.

    Timing happens inside the worker process, so for parallel runs it
    measures compute time only — queueing behind a busy pool is excluded.
    The per-seed times feed :attr:`SeedStatus.wall_clock` and the lab
    scheduler's ETA estimates.
    """
    start = time.perf_counter()
    result = worker(payload)
    return time.perf_counter() - start, result


@positional_shim
@dataclass(frozen=True, kw_only=True)
class ReplicationConfig:
    """Replication parameters; defaults reproduce the paper's setup.

    Keyword-only: construct as ``ReplicationConfig(measured_duration=...)``.
    Positional construction still works but is deprecated.
    """

    measured_duration: float = 100.0
    warmup: float = 10.0
    seeds: tuple[int, ...] = tuple(range(10))

    @property
    def duration(self) -> float:
        """Total simulated time, warm-up included."""
        return self.measured_duration + self.warmup

    def scaled(self, duration_factor: float = 1.0, num_seeds: int | None = None) -> "ReplicationConfig":
        """A cheaper (or heavier) variant for quick runs and benchmarks."""
        seeds = self.seeds if num_seeds is None else tuple(range(num_seeds))
        return ReplicationConfig(
            measured_duration=self.measured_duration * duration_factor,
            warmup=self.warmup,
            seeds=seeds,
        )


PAPER_CONFIG = ReplicationConfig()


@dataclass
class SeedStatus:
    """What happened to one seed across its attempts.

    ``completed`` is True once a result was obtained (possibly after
    retries, possibly via the serial fallback).  ``errors`` records one
    message per failed attempt — ``"timeout after Ns"`` for bounded-wait
    expiries, the exception text otherwise.  ``wall_clock`` is the
    in-process compute time, in seconds, of the successful attempt (pool
    queueing excluded); ``None`` until the seed completes.  ``cached`` marks
    seeds served from the lab's result store without simulating.  ``backend``
    names the engine that produced the result: ``"batch"`` when the seed ran
    inside a lockstep batch-kernel group (``wall_clock`` is then the group's
    time split evenly), otherwise the per-seed backend that was requested.
    """

    seed: int
    completed: bool = False
    attempts: int = 0
    timeouts: int = 0
    fallback: bool = False
    errors: tuple[str, ...] = ()
    wall_clock: float | None = None
    cached: bool = False
    backend: str | None = None

    def describe(self) -> str:
        if self.completed:
            how = "cached" if self.cached else (
                "serial fallback" if self.fallback else "ok"
            )
            suffix = f" after {self.attempts} attempts" if self.attempts > 1 else ""
            if self.wall_clock is not None:
                suffix += f" in {self.wall_clock:.3f}s"
            return f"seed {self.seed}: {how}{suffix}"
        detail = self.errors[-1] if self.errors else "unknown error"
        return f"seed {self.seed}: FAILED after {self.attempts} attempts ({detail})"


@dataclass
class ReplicationOutcome:
    """Aggregate plus the per-seed status report of one replication sweep.

    ``backend`` names the engine that produced the results: ``"batch"`` when
    the whole sweep ran through the lockstep batch kernel, otherwise the
    per-seed backend that executed (``"auto"``, ``"fast"`` or
    ``"reference"``).  All engines are bit-identical, so the field is
    provenance, not semantics.
    """

    stat: SweepStatistic
    results: list[SimulationResult]
    statuses: list[SeedStatus]
    pool_broken: bool = False
    backend: str | None = None

    @property
    def failed_seeds(self) -> tuple[int, ...]:
        return tuple(s.seed for s in self.statuses if not s.completed)

    @property
    def all_completed(self) -> bool:
        return not self.failed_seeds

    def describe(self) -> str:
        lines = [s.describe() for s in self.statuses]
        if self.pool_broken:
            lines.append("worker pool died; remaining seeds ran serially")
        return "\n".join(lines)


def _run_payloads_serial(
    payloads: Sequence,
    worker: Callable,
    statuses: dict[int, SeedStatus],
    results: dict[int, SimulationResult],
    indices: Sequence[int],
    max_seed_retries: int,
    fallback: bool,
) -> None:
    """Run the given payload indices in-process, with bounded retries."""
    for index in indices:
        status = statuses[index]
        while not status.completed:
            status.attempts += 1
            try:
                elapsed, results[index] = _timed_call(worker, payloads[index])
            except Exception as exc:  # noqa: BLE001 - report, don't crash the sweep
                status.errors += (f"{type(exc).__name__}: {exc}",)
                if status.attempts > max_seed_retries:
                    break
            else:
                status.completed = True
                status.fallback = fallback
                status.wall_clock = elapsed


def _run_payloads_parallel(
    payloads: Sequence,
    worker: Callable,
    seeds: Sequence[int],
    seed_timeout: float | None,
    max_seed_retries: int,
    max_workers: int | None,
    initializer: Callable | None = None,
    initargs: tuple = (),
) -> tuple[dict[int, SimulationResult], dict[int, SeedStatus], bool]:
    """Fan payloads over a process pool with timeouts, retries and fallback."""
    statuses = {i: SeedStatus(seed=seeds[i]) for i in range(len(payloads))}
    results: dict[int, SimulationResult] = {}
    remaining = list(range(len(payloads)))
    pool_broken = False
    pool = ProcessPoolExecutor(
        max_workers=max_workers, initializer=initializer, initargs=initargs
    )
    try:
        while remaining:
            futures = {
                index: pool.submit(_timed_call, worker, payloads[index])
                for index in remaining
            }
            next_round: list[int] = []
            recycle = False
            for index, future in futures.items():
                status = statuses[index]
                status.attempts += 1
                try:
                    status.wall_clock, results[index] = future.result(
                        timeout=seed_timeout
                    )
                    status.completed = True
                except FuturesTimeoutError:
                    # The worker is hung (or just slow): abandon the future —
                    # its process still occupies a slot, so the pool is
                    # recycled before any retry round.
                    future.cancel()
                    status.timeouts += 1
                    status.errors += (f"timeout after {seed_timeout:g}s",)
                    recycle = True
                    if status.attempts <= max_seed_retries:
                        next_round.append(index)
                except BrokenProcessPool:
                    pool_broken = True
                    break
                except Exception as exc:  # noqa: BLE001 - retry, then report
                    status.errors += (f"{type(exc).__name__}: {exc}",)
                    if status.attempts <= max_seed_retries:
                        next_round.append(index)
            if pool_broken:
                # Salvage whatever already finished, then run the rest
                # in-process: a broken pool degrades to serial, not to a
                # crashed sweep.
                for index, future in futures.items():
                    if index in results or not future.done():
                        continue
                    try:
                        statuses[index].wall_clock, results[index] = future.result(
                            timeout=0
                        )
                        statuses[index].completed = True
                    except Exception:  # noqa: BLE001
                        pass
                unfinished = [i for i in futures if not statuses[i].completed]
                if initializer is not None:
                    # The serial fallback runs in this process, which never
                    # went through the pool initializer — install the shared
                    # context here before the worker needs it.
                    initializer(*initargs)
                _run_payloads_serial(
                    payloads, worker, statuses, results,
                    unfinished, max_seed_retries, fallback=True,
                )
                break
            if recycle:
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(
                    max_workers=max_workers, initializer=initializer, initargs=initargs
                )
            remaining = next_round
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return results, statuses, pool_broken


def _try_batch(
    network: Network,
    policy: RoutingPolicy,
    traces: Sequence[ArrivalTrace],
    config: ReplicationConfig,
    statuses_map: dict[int, SeedStatus],
    results_map: dict[int, SimulationResult],
) -> bool:
    """Attempt the whole seed group in one lockstep batch-kernel run.

    Returns True (with ``results_map``/``statuses_map`` filled) when the
    batch kernel handled the group, False when the configuration is
    inexpressible or the kernel errored — the caller then falls back to the
    per-seed loop, which accepts everything.  Per-seed wall-clock is the
    group's time split evenly: the kernel advances all seeds together, so
    no finer attribution exists.
    """
    if len(traces) < 2 or batch_ineligibility(policy, traces) is not None:
        return False
    start = time.perf_counter()
    try:
        batch_results = simulate_batch(network, policy, traces, config.warmup)
    except Exception:  # noqa: BLE001 - per-seed loop is the safety net
        return False
    share = (time.perf_counter() - start) / len(traces)
    for index, (trace, result) in enumerate(zip(traces, batch_results)):
        results_map[index] = result
        statuses_map[index] = SeedStatus(
            seed=trace.seed, completed=True, attempts=1,
            wall_clock=share, backend="batch",
        )
    return True


def run_replications_detailed(
    network: Network,
    policy: RoutingPolicy,
    traffic: TrafficMatrix,
    config: ReplicationConfig = PAPER_CONFIG,
    traces: Sequence[ArrivalTrace] | None = None,
    parallel: bool = False,
    max_workers: int | None = None,
    seed_timeout: float | None = None,
    max_seed_retries: int = 1,
    worker: Callable = _replication_worker,
    workload: Workload | None = None,
    backend: str = "auto",
) -> ReplicationOutcome:
    """Run one policy over all seeds; returns the full per-seed outcome.

    ``workload`` switches trace generation to the time-varying per-pair
    generator (:func:`~repro.traffic.workload.generate_workload_trace`);
    ``None`` keeps the historical stationary traces bit for bit.  It is
    ignored when explicit ``traces`` are supplied.

    ``backend`` selects the execution engine.  Under ``"auto"`` or
    ``"batch"`` the serial path first tries to run all seeds in one
    lockstep batch-kernel invocation (:func:`repro.sim.batch.simulate_batch`),
    falling back per seed when the configuration is inexpressible;
    ``"fast"`` / ``"reference"`` force the per-seed loops.  Every engine is
    bit-identical, so the choice affects speed and provenance only.

    ``parallel=True`` fans the seeds over a process pool — results are
    bit-identical to the serial path (each seed is fully self-contained).
    ``seed_timeout`` bounds the wait on each seed's future; a timed-out or
    crashed seed is retried up to ``max_seed_retries`` times (the pool is
    recycled after a timeout, since the hung worker still holds its slot;
    the abandoned process is not killed, merely orphaned).  If the pool
    itself breaks, the unfinished seeds run serially in-process.  ``worker``
    is injectable for testing the failure paths; it must be a picklable
    callable taking one payload tuple.

    Seeds that exhaust their retries are excluded from the aggregate and
    reported in the outcome's statuses; the sweep still completes unless
    *every* seed failed (then ``RuntimeError``).
    """
    backend = resolve_backend(backend, None, owner="run_replications_detailed")
    per_seed_backend = backend if backend in ("fast", "reference") else "auto"
    used_batch = False
    if parallel and traces is None:
        if worker is _replication_worker:
            # Default worker: ship the shared (network, policy, traffic)
            # context once per worker process via the pool initializer, so
            # the topology's path enumeration and the policy's protection
            # tables are pickled per worker rather than per seed.  Payloads
            # shrink to bare seed integers.
            payloads = list(config.seeds)
            results_map, statuses_map, pool_broken = _run_payloads_parallel(
                payloads, _shared_context_worker, config.seeds,
                seed_timeout, max_seed_retries, max_workers,
                initializer=_install_worker_context,
                initargs=(network, policy, traffic, config.duration,
                          config.warmup, workload, per_seed_backend),
            )
        else:
            # Injected worker (tests, custom pipelines): keep the historical
            # self-contained payload tuples.
            payloads = [
                (network, policy, traffic, config.duration, config.warmup, seed)
                for seed in config.seeds
            ]
            results_map, statuses_map, pool_broken = _run_payloads_parallel(
                payloads, worker, config.seeds, seed_timeout, max_seed_retries, max_workers
            )
    else:
        if traces is None:
            traces = [
                _make_trace(traffic, workload, config.duration, seed)
                for seed in config.seeds
            ]
        payloads = list(traces)
        seeds = [trace.seed for trace in traces]
        statuses_map = {i: SeedStatus(seed=seeds[i]) for i in range(len(payloads))}
        results_map = {}
        if backend in ("auto", "batch"):
            used_batch = _try_batch(
                network, policy, traces, config, statuses_map, results_map
            )
        if not used_batch:
            _run_payloads_serial(
                payloads,
                lambda trace: simulate(
                    network, policy, trace, config.warmup,
                    backend=per_seed_backend,
                ),
                statuses_map, results_map,
                range(len(payloads)), max_seed_retries, fallback=False,
            )
        pool_broken = False
    statuses = [statuses_map[i] for i in sorted(statuses_map)]
    results = [results_map[i] for i in sorted(results_map)]
    if not results:
        report = "; ".join(s.describe() for s in statuses)
        raise RuntimeError(f"every replication seed failed: {report}")
    for status in statuses:
        if status.backend is None:
            status.backend = per_seed_backend
    stat = aggregate([result.network_blocking for result in results])
    return ReplicationOutcome(
        stat, results, statuses, pool_broken,
        backend="batch" if used_batch else per_seed_backend,
    )


def run_replications(
    network: Network,
    policy: RoutingPolicy,
    traffic: TrafficMatrix,
    config: ReplicationConfig = PAPER_CONFIG,
    traces: Sequence[ArrivalTrace] | None = None,
    parallel: bool = False,
    max_workers: int | None = None,
    seed_timeout: float | None = None,
    max_seed_retries: int = 1,
    workload: Workload | None = None,
    backend: str = "auto",
) -> tuple[SweepStatistic, list[SimulationResult]]:
    """Run one policy over all seeds; returns aggregate blocking + raw results.

    Pre-generated ``traces`` may be passed to share them across policies
    (``compare_policies`` does); otherwise they are generated per seed.
    This is the historical interface; :func:`run_replications_detailed`
    additionally returns the per-seed status report.
    """
    outcome = run_replications_detailed(
        network, policy, traffic, config,
        traces=traces, parallel=parallel, max_workers=max_workers,
        seed_timeout=seed_timeout, max_seed_retries=max_seed_retries,
        workload=workload, backend=backend,
    )
    return outcome.stat, outcome.results


def compare_policies(
    network: Network,
    policies: Mapping[str, RoutingPolicy],
    traffic: TrafficMatrix,
    config: ReplicationConfig = PAPER_CONFIG,
    parallel: bool = False,
    max_workers: int | None = None,
    seed_timeout: float | None = None,
    max_seed_retries: int = 1,
    backend: str = "auto",
) -> dict[str, SweepStatistic]:
    """Run several policies on *identical* traces and aggregate each.

    This is the paper's common-random-numbers comparison: differences
    between policies reflect routing decisions only, never sampling noise in
    the arrival processes.  ``parallel=True`` fans seeds over a process pool
    per policy; trace generation is deterministic per seed, so the common-
    random-numbers discipline is preserved (workers rebuild the same traces
    — and a retried seed rebuilds the same trace again).  ``backend``
    selects the execution engine per policy sweep (see
    :func:`run_replications_detailed`); all engines are bit-identical.
    """
    comparison: dict[str, SweepStatistic] = {}
    if parallel:
        for label, policy in policies.items():
            stat, __ = run_replications(
                network, policy, traffic, config,
                parallel=True, max_workers=max_workers,
                seed_timeout=seed_timeout, max_seed_retries=max_seed_retries,
                backend=backend,
            )
            comparison[label] = stat
        return comparison
    traces = [generate_trace(traffic, config.duration, seed) for seed in config.seeds]
    for label, policy in policies.items():
        stat, __ = run_replications(
            network, policy, traffic, config, traces=traces, backend=backend
        )
        comparison[label] = stat
    return comparison


@dataclass
class SweepPoint:
    """One load point of a sweep: the x-value plus per-policy statistics."""

    load: float
    blocking: dict[str, SweepStatistic] = field(default_factory=dict)
    erlang_bound: float | None = None
