"""Plain-text rendering of experiment outputs.

The repository regenerates the paper's tables and figure series as data;
these helpers format them as aligned text tables for benchmark output,
examples and the CLI.  No plotting dependency is used anywhere.
"""

from __future__ import annotations

from typing import Sequence

from ..sim.metrics import SweepStatistic
from .runner import SweepPoint
from .tables import Table1Row

__all__ = ["format_table", "format_sweep", "format_table1"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Align ``rows`` under ``headers``; numbers are rendered compactly."""

    def cell(value: object) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) < 0.01:
                return f"{value:.2e}"
            return f"{value:.4f}".rstrip("0").rstrip(".")
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in text_rows)) if text_rows else len(headers[col])
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(value.rjust(width) for value, width in zip(row, widths)))
    return "\n".join(lines)


def _stat_cell(stat: SweepStatistic) -> str:
    if stat.half_width > 0:
        return f"{stat.mean:.4f}±{stat.half_width:.4f}"
    return f"{stat.mean:.4f}"


def format_sweep(points: Sequence[SweepPoint], title: str = "") -> str:
    """Render a load sweep as one row per load point, one column per scheme."""
    if not points:
        return "(empty sweep)"
    schemes = list(points[0].blocking)
    headers = ["load"] + schemes
    if any(point.erlang_bound is not None for point in points):
        headers.append("erlang-bound")
    rows = []
    for point in points:
        row: list[object] = [point.load]
        row.extend(_stat_cell(point.blocking[s]) for s in schemes)
        if "erlang-bound" in headers:
            row.append(point.erlang_bound if point.erlang_bound is not None else "")
        rows.append(row)
    table = format_table(headers, rows)
    return f"{title}\n{table}" if title else table


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render the regenerated Table 1 with paper columns for comparison."""
    headers = [
        "link", "C", "Lambda", "paper-Lambda",
        "r(H=6)", "paper", "r(H=11)", "paper",
    ]
    body = [
        [
            f"{row.link[0]}->{row.link[1]}",
            row.capacity,
            f"{row.load:.1f}",
            row.paper_load,
            row.r_h6,
            row.paper_r_h6,
            row.r_h11,
            row.paper_r_h11,
        ]
        for row in rows
    ]
    return format_table(headers, body)
