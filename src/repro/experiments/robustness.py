"""Robustness studies: forecast error and dynamic mid-run link failures.

The paper's concluding remarks list, among alternate routing's benefits,
"less sensitivity of blocking performance to traffic estimates and network
engineering".  Two experiments stress that claim:

* :func:`forecast_error_sweep` — the network is *engineered* (primary
  paths, protection levels) against a nominal forecast, but the *actual*
  offered traffic is the forecast perturbed by i.i.d. lognormal noise per
  O-D pair.  Single-path routing eats the mismatch on whichever links the
  misforecast overloads; alternate routing spills the excess onto idle
  capacity elsewhere — so its blocking should degrade less as the forecast
  error grows.

* :func:`dynamic_failure_comparison` — the dynamic extension of the
  paper's static Section 4.2.2 failure study: a link fails *mid-run* and
  is later repaired, severing in-progress calls and leaving the routing
  policy stale until a reconvergence delay elapses.  Beyond blocking, this
  reports the drop rate, end-to-end availability and the time to recover
  after the repair, per policy, under common random numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from ..routing.alternate import (
    ControlledAlternateRouting,
    UncontrolledAlternateRouting,
)
from ..routing.base import RoutingPolicy
from ..routing.single_path import SinglePathRouting
from ..sim.faultplane import single_failure_timeline
from ..sim.metrics import SweepStatistic, aggregate
from ..sim.rng import substream
from ..sim.simulator import LossNetworkSimulator
from ..sim.trace import generate_trace
from ..topology.graph import Network
from ..topology.nsfnet import nsfnet_backbone
from ..topology.paths import PathTable, build_path_table
from ..traffic.calibration import nsfnet_nominal_traffic
from ..traffic.demand import primary_link_loads
from ..traffic.matrix import TrafficMatrix
from .runner import PAPER_CONFIG, ReplicationConfig, compare_policies

__all__ = [
    "perturbed_traffic",
    "forecast_error_sweep",
    "DynamicFailureReport",
    "dynamic_failure_comparison",
]


def perturbed_traffic(
    traffic: TrafficMatrix, sigma: float, seed: int
) -> TrafficMatrix:
    """Multiply each O-D demand by an independent lognormal factor.

    ``sigma`` is the standard deviation of the underlying normal; the factor
    is mean-one (``exp(sigma^2 / 2)`` compensated) so the *expected* total
    offered load is unchanged — only its spatial pattern is misforecast.
    """
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if sigma == 0.0:
        return traffic
    rng = substream(seed, "forecast-error")
    matrix = traffic.as_array()
    factors = rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma, size=matrix.shape)
    np.fill_diagonal(factors, 1.0)
    return TrafficMatrix(matrix * factors)


def forecast_error_sweep(
    network: Network,
    table: PathTable,
    nominal: TrafficMatrix,
    sigmas: Sequence[float] = (0.0, 0.3, 0.6, 1.0),
    config: ReplicationConfig = PAPER_CONFIG,
    perturbation_seed: int = 12_345,
) -> dict[float, dict[str, SweepStatistic]]:
    """Blocking vs forecast-error magnitude, policies sized for the nominal.

    Protection levels (and primary paths) come from the *nominal* matrix —
    the engineered state — while arrivals follow the perturbed matrix.  The
    same perturbation realization is used for every policy at a given
    ``sigma`` (and, through the config seeds, the same arrival processes).
    """
    nominal_loads = primary_link_loads(network, table, nominal)
    policies = {
        "single-path": SinglePathRouting(network, table),
        "uncontrolled": UncontrolledAlternateRouting(network, table),
        "controlled": ControlledAlternateRouting(network, table, nominal_loads),
    }
    outcome: dict[float, dict[str, SweepStatistic]] = {}
    for sigma in sigmas:
        actual = perturbed_traffic(nominal, float(sigma), perturbation_seed)
        outcome[float(sigma)] = compare_policies(network, policies, actual, config)
    return outcome


@dataclass(frozen=True)
class DynamicFailureReport:
    """Per-policy outcome of the dynamic-failure study, aggregated over seeds.

    ``blocking`` and ``drop_rate`` are the usual measured-window fractions;
    ``availability`` is one minus both; ``time_to_recover`` is the time from
    the repair instant until the binned loss fraction first returns to the
    run's own pre-failure baseline (in holding-time units).
    """

    blocking: SweepStatistic
    drop_rate: SweepStatistic
    availability: SweepStatistic
    time_to_recover: SweepStatistic


def _default_policy_factories(
    traffic: TrafficMatrix,
) -> dict[str, Callable[[Network], RoutingPolicy]]:
    """The paper's three schemes as rebuildable factories.

    Each factory derives its tables (and, for the controlled scheme, its
    protection levels) from whatever topology it is handed — so the same
    factory builds the initial policy and the reconverged one after a fault
    changes the link set.  Protection is always sized against the *offered*
    traffic, the engineered-state discipline of the static failure study.
    """

    def single_path(net: Network) -> RoutingPolicy:
        return SinglePathRouting(net, build_path_table(net))

    def uncontrolled(net: Network) -> RoutingPolicy:
        return UncontrolledAlternateRouting(net, build_path_table(net))

    def controlled(net: Network) -> RoutingPolicy:
        table = build_path_table(net)
        loads = primary_link_loads(net, table, traffic)
        return ControlledAlternateRouting(net, table, loads)

    return {
        "single-path": single_path,
        "uncontrolled": uncontrolled,
        "controlled": controlled,
    }


def dynamic_failure_comparison(
    config: ReplicationConfig = PAPER_CONFIG,
    load_scale: float = 1.2,
    duplex: tuple[int, int] = (2, 3),
    fail_fraction: float = 0.2,
    repair_fraction: float = 0.5,
    reconvergence_delay: float = 2.0,
    num_bins: int = 20,
    factories: Mapping[str, Callable[[Network], RoutingPolicy]] | None = None,
) -> dict[str, DynamicFailureReport]:
    """The paper's failure study made dynamic: fail mid-run, repair, recover.

    On NSFNet at ``load_scale`` times the nominal traffic, duplex link
    ``duplex`` fails at ``warmup + fail_fraction * measured_duration`` and
    is repaired at ``warmup + repair_fraction * measured_duration`` (the
    paper-config defaults put these at t=30 and t=60).  In-progress calls
    on the link are dropped; each policy keeps routing on stale tables for
    ``reconvergence_delay`` time units after each topology change, then is
    rebuilt from its factory against the changed topology.

    All policies replay identical arrival traces (common random numbers),
    and every per-seed simulation is fully deterministic, so the whole
    comparison is reproducible bit for bit.
    """
    network = nsfnet_backbone()
    traffic = nsfnet_nominal_traffic().scaled(load_scale)
    if factories is None:
        factories = _default_policy_factories(traffic)
    measured = config.measured_duration
    fail_at = config.warmup + fail_fraction * measured
    repair_at = config.warmup + repair_fraction * measured
    if not config.warmup <= fail_at < repair_at < config.duration:
        raise ValueError(
            f"failure window [{fail_at:g}, {repair_at:g}] must lie inside the "
            f"measured interval [{config.warmup:g}, {config.duration:g})"
        )
    timeline = single_failure_timeline(*duplex, fail_at=fail_at, repair_at=repair_at)
    bin_width = config.duration / num_bins
    traces = [generate_trace(traffic, config.duration, seed) for seed in config.seeds]

    reports: dict[str, DynamicFailureReport] = {}
    for name, factory in factories.items():
        blocking, drops, availability, recovery = [], [], [], []
        for trace in traces:
            simulator = LossNetworkSimulator(
                network,
                factory(network),
                trace,
                warmup=config.warmup,
                faults=timeline,
                reconvergence_delay=reconvergence_delay,
                rebuild_policy=factory,
                timeline_bin=bin_width,
            )
            result = simulator.run()
            series = simulator.binned_series
            # The recovery baseline is this run's own steady loss before the
            # failure: the mean loss fraction over the measured bins that end
            # before the link goes down.
            loss = series.loss_fraction()
            pre_failure = [
                loss[i]
                for i in range(series.num_bins)
                if series.bin_start(i) >= config.warmup
                and (i + 1) * bin_width <= fail_at
                and series.offered[i] > 0
            ]
            baseline = float(np.mean(pre_failure)) if pre_failure else 0.0
            blocking.append(result.network_blocking)
            drops.append(result.network_drop_rate)
            availability.append(result.availability)
            recovery.append(series.time_to_recover(repair_at, baseline))
        reports[name] = DynamicFailureReport(
            blocking=aggregate(blocking),
            drop_rate=aggregate(drops),
            availability=aggregate(availability),
            time_to_recover=aggregate(recovery),
        )
    return reports
