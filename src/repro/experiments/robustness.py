"""Sensitivity to traffic-forecast error (the paper's concluding claim).

The paper's concluding remarks list, among alternate routing's benefits,
"less sensitivity of blocking performance to traffic estimates and network
engineering".  This experiment measures that: the network is *engineered*
(primary paths, protection levels) against a nominal forecast, but the
*actual* offered traffic is the forecast perturbed by i.i.d. lognormal
noise per O-D pair.  Single-path routing eats the mismatch on whichever
links the misforecast overloads; alternate routing spills the excess onto
idle capacity elsewhere — so its blocking should degrade less as the
forecast error grows.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..routing.alternate import (
    ControlledAlternateRouting,
    UncontrolledAlternateRouting,
)
from ..routing.single_path import SinglePathRouting
from ..sim.metrics import SweepStatistic
from ..sim.rng import substream
from ..topology.graph import Network
from ..topology.paths import PathTable
from ..traffic.demand import primary_link_loads
from ..traffic.matrix import TrafficMatrix
from .runner import PAPER_CONFIG, ReplicationConfig, compare_policies

__all__ = ["perturbed_traffic", "forecast_error_sweep"]


def perturbed_traffic(
    traffic: TrafficMatrix, sigma: float, seed: int
) -> TrafficMatrix:
    """Multiply each O-D demand by an independent lognormal factor.

    ``sigma`` is the standard deviation of the underlying normal; the factor
    is mean-one (``exp(sigma^2 / 2)`` compensated) so the *expected* total
    offered load is unchanged — only its spatial pattern is misforecast.
    """
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if sigma == 0.0:
        return traffic
    rng = substream(seed, "forecast-error")
    matrix = traffic.as_array()
    factors = rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma, size=matrix.shape)
    np.fill_diagonal(factors, 1.0)
    return TrafficMatrix(matrix * factors)


def forecast_error_sweep(
    network: Network,
    table: PathTable,
    nominal: TrafficMatrix,
    sigmas: Sequence[float] = (0.0, 0.3, 0.6, 1.0),
    config: ReplicationConfig = PAPER_CONFIG,
    perturbation_seed: int = 12_345,
) -> dict[float, dict[str, SweepStatistic]]:
    """Blocking vs forecast-error magnitude, policies sized for the nominal.

    Protection levels (and primary paths) come from the *nominal* matrix —
    the engineered state — while arrivals follow the perturbed matrix.  The
    same perturbation realization is used for every policy at a given
    ``sigma`` (and, through the config seeds, the same arrival processes).
    """
    nominal_loads = primary_link_loads(network, table, nominal)
    policies = {
        "single-path": SinglePathRouting(network, table),
        "uncontrolled": UncontrolledAlternateRouting(network, table),
        "controlled": ControlledAlternateRouting(network, table, nominal_loads),
    }
    outcome: dict[float, dict[str, SweepStatistic]] = {}
    for sigma in sigmas:
        actual = perturbed_traffic(nominal, float(sigma), perturbation_seed)
        outcome[float(sigma)] = compare_policies(network, policies, actual, config)
    return outcome
