"""Ablations of the design choices DESIGN.md calls out.

* :func:`protection_sensitivity` — how blocking responds to perturbing every
  link's protection level away from the Theorem-1 value (the robustness
  property the paper leans on, after Key [21] Section 2.2);
* :func:`estimator_ablation` — a priori knowledge of ``Lambda^k`` versus an
  online measurement from observed primary call set-ups (the paper assumes
  the former and argues the difference is benign).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..routing.alternate import ControlledAlternateRouting
from ..routing.estimator import estimate_loads_from_trace
from ..sim.metrics import SweepStatistic
from ..sim.trace import generate_trace
from ..topology.graph import Network
from ..topology.paths import PathTable
from ..traffic.demand import primary_link_loads
from ..traffic.matrix import TrafficMatrix
from .runner import PAPER_CONFIG, ReplicationConfig, run_replications

__all__ = ["protection_sensitivity", "estimator_ablation"]


def protection_sensitivity(
    network: Network,
    table: PathTable,
    traffic: TrafficMatrix,
    offsets: Sequence[int] = (-4, -2, -1, 0, 1, 2, 4),
    config: ReplicationConfig = PAPER_CONFIG,
) -> dict[int, SweepStatistic]:
    """Blocking of controlled routing with every ``r`` shifted by an offset.

    Offsets are clipped to ``[0, C]`` per link.  A flat response around
    offset 0 is the robustness the paper claims for state protection.
    """
    loads = primary_link_loads(network, table, traffic)
    reference = ControlledAlternateRouting(network, table, loads)
    capacities = network.capacities()
    outcome: dict[int, SweepStatistic] = {}
    for offset in offsets:
        shifted = np.clip(reference.protection_levels + offset, 0, capacities)
        policy = ControlledAlternateRouting(
            network, table, loads, protection_override=shifted.astype(np.int64)
        )
        stat, __ = run_replications(network, policy, traffic, config)
        outcome[int(offset)] = stat
    return outcome


def estimator_ablation(
    network: Network,
    table: PathTable,
    traffic: TrafficMatrix,
    config: ReplicationConfig = PAPER_CONFIG,
    measurement_seed: int = 9_999,
    measurement_duration: float = 50.0,
) -> dict[str, object]:
    """Known vs estimated primary loads feeding the protection levels.

    The estimated variant measures primary set-up rates on an *independent*
    trace (seed disjoint from the evaluation seeds) of ``measurement_duration``
    time units, then builds the controlled policy from those noisy loads.
    Returns both policies' aggregated blocking plus the worst per-link
    protection-level discrepancy the estimation error induced.
    """
    true_loads = primary_link_loads(network, table, traffic)
    known = ControlledAlternateRouting(network, table, true_loads)

    measurement_trace = generate_trace(
        traffic, measurement_duration + config.warmup, measurement_seed
    )
    estimated_loads = estimate_loads_from_trace(
        network, known, measurement_trace, warmup=config.warmup
    )
    estimated = ControlledAlternateRouting(network, table, estimated_loads)

    known_stat, __ = run_replications(network, known, traffic, config)
    estimated_stat, __ = run_replications(network, estimated, traffic, config)
    level_gap = int(
        np.abs(known.protection_levels - estimated.protection_levels).max()
    )
    load_error = float(np.abs(true_loads - estimated_loads).max())
    return {
        "known": known_stat,
        "estimated": estimated_stat,
        "max_protection_gap": level_gap,
        "max_load_error": load_error,
    }
