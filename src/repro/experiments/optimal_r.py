"""Empirical optimal reservation search (the §3.2 comparison, by simulation).

Section 3.2 argues the Equation-15 protection levels land within ~2 of
Mitra & Gibbens' *optimal* trunk reservations in the loads that matter.
This module makes the comparison empirical on any symmetric network: sweep
a uniform reservation ``r`` applied to every link, simulate the controlled
scheme at each value, and locate the blocking-minimizing ``r`` — then
compare against the Equation-15 choice.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.protection import min_protection_level
from ..routing.alternate import ControlledAlternateRouting
from ..sim.metrics import SweepStatistic
from ..topology.graph import Network
from ..topology.paths import PathTable
from ..traffic.demand import primary_link_loads
from ..traffic.matrix import TrafficMatrix
from .runner import PAPER_CONFIG, ReplicationConfig, compare_policies

__all__ = ["uniform_reservation_sweep", "empirical_optimal_reservation"]


def uniform_reservation_sweep(
    network: Network,
    table: PathTable,
    traffic: TrafficMatrix,
    r_values: Sequence[int],
    config: ReplicationConfig = PAPER_CONFIG,
) -> dict[int, SweepStatistic]:
    """Blocking of the controlled scheme at each uniform reservation level.

    All policies replay identical traces (common random numbers), so the
    sweep is smooth enough to read an argmin off directly.
    """
    capacities = network.capacities()
    loads = primary_link_loads(network, table, traffic)
    policies = {}
    for r in r_values:
        if r < 0 or (r > capacities).any():
            raise ValueError(f"reservation {r} outside [0, min capacity]")
        levels = np.full(network.num_links, int(r), dtype=np.int64)
        policies[str(r)] = ControlledAlternateRouting(
            network, table, loads, protection_override=levels
        )
    stats = compare_policies(network, policies, traffic, config)
    return {int(name): stat for name, stat in stats.items()}


def empirical_optimal_reservation(
    network: Network,
    table: PathTable,
    traffic: TrafficMatrix,
    r_values: Sequence[int],
    config: ReplicationConfig = PAPER_CONFIG,
) -> dict[str, object]:
    """Locate the empirically best uniform ``r`` and compare to Equation 15.

    Returns the sweep, the argmin, the Equation-15 level (of the maximally
    loaded link — the binding one on symmetric networks), and the blocking
    penalty of using Equation 15 instead of the empirical optimum.
    """
    sweep = uniform_reservation_sweep(network, table, traffic, r_values, config)
    best_r = min(sweep, key=lambda r: sweep[r].mean)
    loads = primary_link_loads(network, table, traffic)
    capacities = network.capacities()
    binding = int(np.argmax(loads))
    equation15 = min_protection_level(
        float(loads[binding]), int(capacities[binding]), table.max_hops
    )
    nearest = min(sweep, key=lambda r: abs(r - equation15))
    return {
        "sweep": sweep,
        "best_r": best_r,
        "equation15_r": equation15,
        "penalty": sweep[nearest].mean - sweep[best_r].mean,
    }
