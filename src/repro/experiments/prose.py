"""The prose experiments of Section 4.2.2, as reusable library functions.

The paper reports several experiments in prose rather than figures: link
failures, per-O-D blocking skew, and the min-link-loss primary rule.  The
benchmark harnesses and the experiment registry both drive the functions
here, so every artifact has exactly one implementation.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.fairness import FairnessReport, fairness_report
from ..routing.alternate import (
    ControlledAlternateRouting,
    UncontrolledAlternateRouting,
)
from ..routing.minloss import MinLossSolution, optimize_primary_flows
from ..routing.single_path import SinglePathRouting
from ..sim.failures import FailureScenario, apply_failures
from ..sim.metrics import SweepStatistic
from ..sim.simulator import simulate
from ..sim.trace import generate_trace
from ..topology.nsfnet import nsfnet_backbone
from ..topology.paths import build_path_table
from ..traffic.calibration import nsfnet_nominal_traffic
from ..traffic.demand import bifurcated_link_loads, primary_link_loads
from .runner import PAPER_CONFIG, ReplicationConfig, compare_policies

__all__ = [
    "PAPER_FAILURE_SCENARIOS",
    "link_failure_comparison",
    "fairness_comparison",
    "minloss_comparison",
]

#: The paper's two failure experiments plus the intact reference.
PAPER_FAILURE_SCENARIOS: tuple[FailureScenario, ...] = (
    FailureScenario((), name="intact"),
    FailureScenario(((2, 3),), name="fail 2<->3"),
    FailureScenario(((7, 9),), name="fail 7<->9"),
)


def link_failure_comparison(
    config: ReplicationConfig = PAPER_CONFIG,
    load_scale: float = 1.2,
    scenarios: Sequence[FailureScenario] = PAPER_FAILURE_SCENARIOS,
) -> dict[str, dict[str, SweepStatistic]]:
    """Blocking of the three schemes under each failure scenario (NSFNet)."""
    network = nsfnet_backbone()
    traffic = nsfnet_nominal_traffic().scaled(load_scale)
    outcome: dict[str, dict[str, SweepStatistic]] = {}
    for scenario in scenarios:
        failed = apply_failures(network, traffic, scenario)
        policies = {
            "single-path": SinglePathRouting(failed.network, failed.table),
            "uncontrolled": UncontrolledAlternateRouting(failed.network, failed.table),
            "controlled": ControlledAlternateRouting(
                failed.network, failed.table, failed.primary_loads
            ),
        }
        outcome[scenario.name] = compare_policies(
            failed.network, policies, traffic, config
        )
    return outcome


def fairness_comparison(
    config: ReplicationConfig = PAPER_CONFIG,
    max_hops: int = 6,
    load_scale: float = 1.1,
) -> dict[str, FairnessReport]:
    """Per-O-D blocking-skew reports for the three schemes (NSFNet, H=6).

    Counts are pooled across seeds before forming per-pair probabilities,
    since individual pairs see few calls per run.
    """
    network = nsfnet_backbone()
    table = build_path_table(network, max_hops=max_hops)
    traffic = nsfnet_nominal_traffic().scaled(load_scale)
    loads = primary_link_loads(network, table, traffic)
    policies = {
        "single-path": SinglePathRouting(network, table),
        "uncontrolled": UncontrolledAlternateRouting(network, table),
        "controlled": ControlledAlternateRouting(network, table, loads),
    }
    traces = [generate_trace(traffic, config.duration, seed) for seed in config.seeds]
    reports: dict[str, FairnessReport] = {}
    for name, policy in policies.items():
        blocked = None
        offered = None
        od_pairs = ()
        for trace in traces:
            result = simulate(network, policy, trace, config.warmup)
            od_pairs = result.od_pairs
            if blocked is None:
                blocked = result.blocked.astype(float)
                offered = result.offered.astype(float)
            else:
                blocked += result.blocked
                offered += result.offered
        pair_blocking = {
            od: blocked[i] / offered[i]
            for i, od in enumerate(od_pairs)
            if offered[i] > 0
        }
        reports[name] = fairness_report(pair_blocking)
    return reports


def minloss_comparison(
    config: ReplicationConfig = PAPER_CONFIG,
    load_scale: float = 1.1,
    max_iterations: int = 80,
) -> tuple[dict[str, SweepStatistic], MinLossSolution]:
    """Min-hop vs min-link-loss primaries, with and without the control."""
    network = nsfnet_backbone()
    table = build_path_table(network)
    traffic = nsfnet_nominal_traffic().scaled(load_scale)

    minhop_loads = primary_link_loads(network, table, traffic)
    solution = optimize_primary_flows(
        network, table, traffic, max_iterations=max_iterations
    )
    minloss_loads = bifurcated_link_loads(network, solution.splits, traffic)
    policies = {
        "single/min-hop": SinglePathRouting(network, table),
        "single/min-loss": SinglePathRouting(network, table, splits=solution.splits),
        "controlled/min-hop": ControlledAlternateRouting(network, table, minhop_loads),
        "controlled/min-loss": ControlledAlternateRouting(
            network, table, minloss_loads, splits=solution.splits
        ),
    }
    stats = compare_policies(network, policies, traffic, config)
    return stats, solution
