"""EXP-ADV: what nonstationary and adversarial demand does to the guarantee.

Theorem 1 is a stationary statement: under fixed Poisson demand, controlled
alternate routing with Equation-15 protection never loses to single-path
routing, and :func:`repro.analysis.erlang_bound.erlang_bound` lower-bounds
any scheme's blocking.  This study measures what happens when demand
*moves* — per-workload, it compares:

* **static** thresholds (Equation 15 computed once from the nominal
  demand, then frozen — the paper's deployment, blind to the shift);
* **adaptive** thresholds (links re-estimate demand by EWMA and recompute
  Equation 15 every window — the paper's "found from the primary call
  set-ups that fly past the link" loop, via
  :class:`repro.routing.adaptive.AdaptiveProtectionSimulator`);
* the **stationary Theorem-1 bound** evaluated on the time-averaged
  matrix — the reference line the workloads bend away from;

and, on the serving plane, how *fast* the online recompute tracks the
shift: :func:`repro.serve.loadgen.measure_regime_shift` reports recompute
counts, per-refresh threshold deltas and time-to-reconverge with
adaptation on versus off.

Workloads come from :mod:`repro.traffic.workload`; the adversarial one is
seeded, so every number here is replayable.  The study decomposes into a
lab job graph (one scenario per workload), which is how the cache-key
acceptance criterion is exercised: the workload spec is part of each job's
content key.
"""

from __future__ import annotations

import numpy as np

from ..analysis.erlang_bound import erlang_bound
from ..routing.adaptive import AdaptiveProtectionSimulator
from ..sim.metrics import aggregate
from ..sim.simulator import simulate
from ..traffic.demand import primary_link_loads
from .runner import PAPER_CONFIG, ReplicationConfig

__all__ = [
    "STUDY_WORKLOADS",
    "adversarial_load_study",
    "adversarial_load_scenarios",
]

#: The workloads EXP-ADV sweeps: the stationary control, the two headline
#: shapes from the issue, and the slow shift.
STUDY_WORKLOADS = ("stationary", "diurnal", "flash-crowd", "adversarial:0")

#: Serve-plane adaptation knobs used throughout the study.
_UPDATE_INTERVAL = 5.0
_EWMA_WEIGHT = 0.3


def _study_scenario(spec: str, max_hops: int, load_scale: float):
    from ..api import Scenario

    return Scenario(
        topology="nsfnet",
        traffic="nominal",
        policy="controlled",
        max_hops=max_hops,
        load_scale=load_scale,
        workload=None if spec == "stationary" else spec,
    )


def adversarial_load_scenarios(
    max_hops: int = 6, load_scale: float = 1.1
) -> list:
    """EXP-ADV's lab job graph: one controlled-policy study per workload."""
    return [
        (_study_scenario(spec, max_hops, load_scale), ("controlled",))
        for spec in STUDY_WORKLOADS
    ]


def _mean_scale(workload, duration: float, pairs_demands) -> float:
    """Time- and demand-averaged workload multiplier over ``[0, duration)``.

    Piecewise-constant profiles average exactly (no sampling): the bound
    comparison uses the *time-averaged* matrix, so a mass-conserving
    adversary and the stationary control face the same reference line.
    """
    if workload is None:
        return 1.0
    total_demand = sum(d for __, d in pairs_demands)
    if total_demand <= 0:
        return 1.0
    acc = 0.0
    for od, demand in pairs_demands:
        profile = workload.profile_for(od)
        edges = [0.0] + [b for b in profile.breakpoints if 0.0 < b < duration]
        edges.append(duration)
        mean = sum(
            profile.scale_at(t0) * (t1 - t0)
            for t0, t1 in zip(edges, edges[1:])
        ) / duration
        acc += demand * mean
    return acc / total_demand


def adversarial_load_study(
    config: ReplicationConfig = PAPER_CONFIG,
    workloads: tuple[str, ...] = STUDY_WORKLOADS,
    max_hops: int = 6,
    load_scale: float = 1.1,
    serve_seed: int | None = None,
) -> dict:
    """Run the full EXP-ADV comparison; returns a JSON-ready document.

    Per workload: static vs adaptive blocking over ``config.seeds``
    (identical traces — common random numbers), the stationary Erlang
    bound on the time-averaged matrix, and the serve-plane regime-shift
    report (recompute on vs off) for one representative seed.
    """
    from ..serve.loadgen import measure_regime_shift
    from ..serve.state import AdaptationConfig

    reference = _study_scenario("stationary", max_hops, load_scale)
    network = reference.network
    table = reference.path_table
    traffic = reference.traffic_matrix
    nominal_loads = primary_link_loads(network, table, traffic)
    policy = reference.build_policy("controlled")
    pairs_demands = list(traffic.positive_pairs())
    seed0 = config.seeds[0] if serve_seed is None else serve_seed

    results: dict[str, dict] = {}
    for spec in workloads:
        scenario = _study_scenario(spec, max_hops, load_scale)
        workload = scenario.resolved_workload(config.duration)
        static_blocking = []
        adaptive_blocking = []
        update_counts = []
        for seed in config.seeds:
            trace = scenario.make_trace(config.duration, seed)
            static = simulate(network, policy, trace, config.warmup)
            static_blocking.append(static.network_blocking)
            adaptive_sim = AdaptiveProtectionSimulator(
                network, table, trace,
                warmup=config.warmup,
                update_interval=_UPDATE_INTERVAL,
                ewma_weight=_EWMA_WEIGHT,
                max_hops=max_hops,
                initial_loads=nominal_loads,
            )
            adaptive = adaptive_sim.run()
            adaptive_blocking.append(adaptive.network_blocking)
            update_counts.append(len(adaptive_sim.updates))

        mean_scale = _mean_scale(workload, config.duration, pairs_demands)
        bound = erlang_bound(network, traffic.scaled(mean_scale))

        shift = workload.shift_time if workload is not None else None
        serve_trace = scenario.make_trace(config.duration, seed0)
        adapt_cfg = AdaptationConfig(
            update_interval=_UPDATE_INTERVAL,
            ewma_weight=_EWMA_WEIGHT,
            max_hops=max_hops,
            initial_loads=tuple(float(x) for x in nominal_loads),
        )
        serve_on = measure_regime_shift(
            network, policy, serve_trace,
            shift_time=0.0 if shift is None else shift,
            adaptation=adapt_cfg, warmup=config.warmup,
        )
        serve_off = measure_regime_shift(
            network, policy, serve_trace,
            shift_time=0.0 if shift is None else shift,
            adaptation=None, warmup=config.warmup,
        )

        static_stat = aggregate(static_blocking)
        adaptive_stat = aggregate(adaptive_blocking)
        results[spec] = {
            "workload": spec,
            "shift_time": shift,
            "mean_load_scale": mean_scale,
            "static_blocking": {
                "mean": static_stat.mean, "half_width": static_stat.half_width,
            },
            "adaptive_blocking": {
                "mean": adaptive_stat.mean,
                "half_width": adaptive_stat.half_width,
            },
            "erlang_bound": bound,
            "static_excess_over_bound": static_stat.mean - bound,
            "adaptive_excess_over_bound": adaptive_stat.mean - bound,
            "threshold_updates_per_run": float(np.mean(update_counts)),
            "serve": {
                "recompute_on": {
                    "recompute_count": serve_on["recompute_count"],
                    "time_to_reconverge": serve_on["time_to_reconverge"],
                    "network_blocking": serve_on["network_blocking"],
                },
                "recompute_off": {
                    "recompute_count": serve_off["recompute_count"],
                    "time_to_reconverge": serve_off["time_to_reconverge"],
                    "network_blocking": serve_off["network_blocking"],
                },
            },
        }
    return {
        "topology": "nsfnet",
        "traffic": "nominal",
        "policy": "controlled",
        "max_hops": max_hops,
        "load_scale": load_scale,
        "update_interval": _UPDATE_INTERVAL,
        "ewma_weight": _EWMA_WEIGHT,
        "seeds": list(config.seeds),
        "measured_duration": config.measured_duration,
        "warmup": config.warmup,
        "workloads": results,
    }
