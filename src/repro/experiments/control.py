"""EXP-CTL: the closed serve → estimate → re-optimize → hot-swap loop.

EXP-ADV measured the problem: under time-varying and adversarial demand,
static Equation-15 thresholds bleed blocking versus the stationary bound,
and the naive per-window EWMA recompute *loses* to the static deployment
— the adversary rotates its targets, so thresholds fit to the last window
are maximally wrong for the next one.  This study measures the fix built
in :mod:`repro.control`: per workload it compares four arms on common
random numbers —

* **static** — the paper's offline ``r^k`` (Equation 15 from the nominal
  matrix), frozen; evaluated through the batch kernel;
* **ewma** — the EXP-ADV recompute loop
  (:class:`~repro.routing.adaptive.AdaptiveProtectionSimulator`).  Its
  threshold trajectory is piecewise-constant, so each run's schedule is
  re-evaluated through the batch kernel's ``threshold_schedule`` support
  and asserted bit-identical to the scalar loop — the study itself
  guards the kernel;
* **online** — the :class:`repro.control.loop.ControlLoop` closed over a
  live :class:`~repro.serve.engine.RequestEngine`: a volatility-gated
  shrinkage estimator anchored to the provisioned matrix feeding
  per-hop-length Equation-15 floors (Section 3.2's
  ``length-threshold`` family), every proposal projected through the
  Theorem-1 :class:`~repro.control.controllers.SafetyClamp`;
* **hindsight** — the offline-optimal-in-hindsight reference: Section
  3.2 levels computed from the *time-averaged* demand the workload
  actually offered, frozen.  No causal controller can use it; it lower
  bounds what re-optimization could reach.

The headline number is ``gap_closed``: EXP-ADV reported the adversarial
workload blocking ~1.65x the stationary control under the same mean
load; ``gap_closed`` is the fraction of that static-to-stationary gap
the online controller recovers, per workload.  The acceptance bar is the
adversarial row — online must strictly beat static while the clamp
records zero Theorem-1 violations.
"""

from __future__ import annotations

import numpy as np

from ..routing.adaptive import AdaptiveProtectionSimulator
from ..routing.alternate import ControlledAlternateRouting, LengthAdaptiveControlledRouting
from ..sim.batch import simulate_batch
from ..sim.metrics import aggregate
from ..traffic.demand import primary_link_loads
from ..traffic.matrix import TrafficMatrix
from .runner import PAPER_CONFIG, ReplicationConfig

__all__ = [
    "STUDY_WORKLOADS",
    "control_loop_study",
    "hindsight_matrix",
]

#: The nonstationary workloads the controller must survive; the
#: stationary control is omitted deliberately — EXP-ADV already shows
#: every arm collapsing to the same number there, and the CLI refuses a
#: controller on a stationary workload as a no-op (see ``repro serve``).
STUDY_WORKLOADS = ("diurnal", "flash-crowd", "adversarial:0")

_UPDATE_INTERVAL = 5.0
_EWMA_WEIGHT = 0.3


def _study_scenario(spec: str | None, max_hops: int, load_scale: float):
    from ..api import Scenario

    return Scenario(
        topology="nsfnet",
        traffic="nominal",
        policy="controlled",
        max_hops=max_hops,
        load_scale=load_scale,
        workload=spec,
    )


def hindsight_matrix(
    traffic: TrafficMatrix, workload, duration: float
) -> TrafficMatrix:
    """The demand matrix actually offered, averaged over ``[0, duration)``.

    Piecewise-constant profiles integrate exactly; the result is what an
    oracle provisioner would have fed Equation 15 had it known the whole
    run in advance.
    """
    if workload is None:
        return traffic
    array = traffic.as_array().copy()
    for od, demand in traffic.positive_pairs():
        profile = workload.profile_for(od)
        edges = [0.0] + [b for b in profile.breakpoints if 0.0 < b < duration]
        edges.append(duration)
        mean = sum(
            profile.scale_at(t0) * (t1 - t0)
            for t0, t1 in zip(edges, edges[1:])
        ) / duration
        array[od[0], od[1]] = demand * mean
    return TrafficMatrix(array)


def _online_run(network, table, traffic, policy, trace, warmup, controller, interval):
    """One closed-loop engine replay; returns its result and the loop."""
    from ..control import make_control_loop
    from ..serve.engine import RequestEngine
    from ..serve.loadgen import aggregate_decisions, trace_requests
    from ..serve.state import NetworkState

    state = NetworkState(network, policy)
    loop = make_control_loop(
        state, table, traffic, controller=controller, interval=interval
    )
    engine = RequestEngine(network, policy, state=state, control=loop)
    decisions = engine.decide_batch(trace_requests(trace))
    result = aggregate_decisions(trace, decisions, warmup)
    return result, loop, state


def control_loop_study(
    config: ReplicationConfig = PAPER_CONFIG,
    workloads: tuple[str, ...] = STUDY_WORKLOADS,
    max_hops: int = 6,
    load_scale: float = 1.1,
    controller: str = "gradient",
    interval: float = _UPDATE_INTERVAL,
) -> dict:
    """Run the full EXP-CTL comparison; returns a JSON-ready document."""
    from ..serve.loadgen import measure_regime_shift

    reference = _study_scenario(None, max_hops, load_scale)
    network = reference.network
    table = reference.path_table
    traffic = reference.traffic_matrix
    capacities = network.capacities().astype(np.int64)
    nominal_loads = primary_link_loads(network, table, traffic)
    static_policy = reference.build_policy("controlled")
    online_policy = LengthAdaptiveControlledRouting(network, table, nominal_loads)
    # The EWMA arm replays AdaptiveProtectionSimulator's exact policy
    # structure (no splits) so its threshold schedule can be re-evaluated
    # bit-for-bit through the batch kernel.
    ewma_policy = ControlledAlternateRouting(network, table, nominal_loads)

    # The stationary control: what the static deployment blocks when the
    # demand actually is the matrix it was provisioned for.  The per-
    # workload ``gap_closed`` is measured against this floor — it is the
    # "1.65x gap" EXP-ADV reported for the adversarial workload.
    stationary_traces = [
        reference.make_trace(config.duration, seed) for seed in config.seeds
    ]
    stationary_stat = aggregate([
        r.network_blocking
        for r in simulate_batch(
            network, static_policy, stationary_traces, config.warmup
        )
    ])

    results: dict[str, dict] = {}
    for spec in workloads:
        scenario = _study_scenario(spec, max_hops, load_scale)
        workload = scenario.resolved_workload(config.duration)
        traces = [
            scenario.make_trace(config.duration, seed) for seed in config.seeds
        ]

        static_runs = simulate_batch(network, static_policy, traces, config.warmup)
        static_blocking = [r.network_blocking for r in static_runs]

        averaged = hindsight_matrix(traffic, workload, config.duration)
        hindsight_policy = LengthAdaptiveControlledRouting(
            network, table, primary_link_loads(network, table, averaged)
        )
        hindsight_runs = simulate_batch(
            network, hindsight_policy, traces, config.warmup
        )
        hindsight_blocking = [r.network_blocking for r in hindsight_runs]

        ewma_blocking = []
        ewma_updates = []
        batch_matches_loop = True
        for trace in traces:
            adaptive = AdaptiveProtectionSimulator(
                network, table, trace,
                warmup=config.warmup,
                update_interval=interval,
                ewma_weight=_EWMA_WEIGHT,
                max_hops=max_hops,
                initial_loads=nominal_loads,
            )
            scalar = adaptive.run()
            ewma_blocking.append(scalar.network_blocking)
            ewma_updates.append(len(adaptive.updates) - 1)
            # The adaptive loop *is* a piecewise-constant threshold
            # trajectory; its batch replay must agree bit for bit.
            schedule = [
                (u.time, (capacities - u.protection_levels).astype(np.int64))
                for u in adaptive.updates[1:]
            ]
            (replay,) = simulate_batch(
                network, ewma_policy, [trace], config.warmup,
                threshold_schedule=schedule,
            )
            batch_matches_loop = batch_matches_loop and bool(
                np.array_equal(replay.blocked, scalar.blocked)
                and replay.alternate_carried == scalar.alternate_carried
            )

        online_blocking = []
        online_steps = []
        clamp_violations = 0
        clamp_lifted = 0
        swap_seconds = []
        digests = []
        for trace in traces:
            result, loop, state = _online_run(
                network, table, traffic, online_policy, trace,
                config.warmup, controller, interval,
            )
            online_blocking.append(result.network_blocking)
            online_steps.append(len(loop.steps))
            clamp_violations += loop.clamp.violations
            clamp_lifted += sum(s.clamp_lifted for s in loop.steps)
            swap_seconds.extend(
                s.swap_seconds for s in loop.steps if s.applied
            )
            digests.append(loop.decisions_sha256())

        # Serve-plane observability for the representative seed: swap
        # events, epoch trajectory, and how long after the shift the
        # controller kept moving the thresholds.
        shift = workload.shift_time if workload is not None else None
        from ..control import make_control_loop
        from ..serve.state import NetworkState

        serve_state = NetworkState(network, online_policy)
        serve_loop = make_control_loop(
            serve_state, table, traffic, controller=controller,
            interval=interval,
        )
        serve_report = measure_regime_shift(
            network, online_policy, traces[0],
            shift_time=0.0 if shift is None else shift,
            warmup=config.warmup,
            control=serve_loop,
        )

        static_stat = aggregate(static_blocking)
        ewma_stat = aggregate(ewma_blocking)
        online_stat = aggregate(online_blocking)
        hindsight_stat = aggregate(hindsight_blocking)
        gap = static_stat.mean - stationary_stat.mean
        gap_closed = (
            None if gap <= 0
            else (static_stat.mean - online_stat.mean) / gap
        )
        results[spec] = {
            "workload": spec,
            "shift_time": shift,
            "static_blocking": {
                "mean": static_stat.mean, "half_width": static_stat.half_width,
            },
            "ewma_blocking": {
                "mean": ewma_stat.mean, "half_width": ewma_stat.half_width,
            },
            "online_blocking": {
                "mean": online_stat.mean, "half_width": online_stat.half_width,
            },
            "hindsight_blocking": {
                "mean": hindsight_stat.mean,
                "half_width": hindsight_stat.half_width,
            },
            "gap_closed": gap_closed,
            "ewma_updates_per_run": float(np.mean(ewma_updates)),
            "ewma_batch_matches_loop": batch_matches_loop,
            "control_steps_per_run": float(np.mean(online_steps)),
            "clamp_violations": int(clamp_violations),
            "clamp_lifted": int(clamp_lifted),
            "mean_swap_seconds": (
                float(np.mean(swap_seconds)) if swap_seconds else 0.0
            ),
            "decisions_sha256": digests[0],
            "serve": {
                "policy_epoch": serve_report["policy_epoch"],
                "swap_events": len(serve_report["swap_events"]),
                "time_to_reconverge": serve_report["time_to_reconverge"],
                "network_blocking": serve_report["network_blocking"],
            },
        }
    return {
        "topology": "nsfnet",
        "traffic": "nominal",
        "policy": "length-adaptive",
        "controller": controller,
        "interval": interval,
        "max_hops": max_hops,
        "load_scale": load_scale,
        "seeds": list(config.seeds),
        "measured_duration": config.measured_duration,
        "warmup": config.warmup,
        "stationary_blocking": {
            "mean": stationary_stat.mean,
            "half_width": stationary_stat.half_width,
        },
        "workloads": results,
    }
