"""Simulation-methodology checks (Section 4's parameter choices).

The paper: "The simulator ... was run for 100 units of time ... for each of
10 different seeds ... each sample run was warmed up for 10 time units
starting from an idle network.  These simulation parameters were found to be
sufficient for our examples."  This module reproduces the *finding of
sufficiency*:

* :func:`warmup_sensitivity` — blocking estimates vs warm-up length (a
  too-short warm-up biases blocking low, since the network starts idle);
* :func:`seed_convergence` — confidence-interval half-width vs number of
  replications.
"""

from __future__ import annotations

from typing import Sequence

from ..routing.base import RoutingPolicy
from ..sim.metrics import SweepStatistic, aggregate
from ..sim.simulator import simulate
from ..sim.trace import generate_trace
from ..topology.graph import Network
from ..traffic.matrix import TrafficMatrix

__all__ = ["warmup_sensitivity", "seed_convergence"]


def warmup_sensitivity(
    network: Network,
    policy: RoutingPolicy,
    traffic: TrafficMatrix,
    warmups: Sequence[float] = (0.0, 2.0, 5.0, 10.0, 20.0),
    measured_duration: float = 100.0,
    seeds: Sequence[int] = tuple(range(5)),
) -> dict[float, SweepStatistic]:
    """Blocking estimates for several warm-up lengths.

    Every variant measures the same ``measured_duration`` (traces are long
    enough for the largest warm-up) so differences isolate the initial-
    transient bias rather than sample size.
    """
    if not warmups:
        raise ValueError("need at least one warmup value")
    longest = max(warmups)
    duration = longest + measured_duration
    traces = [generate_trace(traffic, duration, seed) for seed in seeds]
    outcome: dict[float, SweepStatistic] = {}
    for warmup in warmups:
        values = []
        for trace in traces:
            # Truncate measurement to the common window [warmup, warmup+D].
            result = simulate(network, policy, trace, warmup=warmup)
            values.append(result.network_blocking)
        outcome[float(warmup)] = aggregate(values)
    return outcome


def seed_convergence(
    network: Network,
    policy: RoutingPolicy,
    traffic: TrafficMatrix,
    seed_counts: Sequence[int] = (2, 5, 10, 20),
    measured_duration: float = 100.0,
    warmup: float = 10.0,
) -> dict[int, SweepStatistic]:
    """Aggregate blocking using the first ``n`` seeds, for each ``n``.

    The half-width should shrink like ``1/sqrt(n)``; the paper's choice of
    10 seeds is "sufficient" when the half-width is small against the
    between-policy differences being reported.
    """
    if not seed_counts or min(seed_counts) < 2:
        raise ValueError("seed counts must all be >= 2")
    total = max(seed_counts)
    values = []
    for seed in range(total):
        trace = generate_trace(traffic, warmup + measured_duration, seed)
        values.append(simulate(network, policy, trace, warmup).network_blocking)
    return {int(n): aggregate(values[:n]) for n in seed_counts}
