"""Regeneration of the paper's figures.

Each function returns the plotted series as plain data (the repository is
plot-library-free by design); the benchmark harnesses print the same rows.

* :func:`figure2_protection_levels` — Figure 2: ``r`` vs ``Lambda`` for
  ``C = 100`` and ``H in {2, 6, 120}``.
* :func:`quadrangle_sweep` — Figures 3 and 4: blocking vs offered load on
  the fully-connected quadrangle for single-path / uncontrolled /
  controlled routing, plus the Erlang bound (the two figures show the same
  data on linear and log scales).
* :func:`nsfnet_sweep` — Figures 6 and 7: blocking vs load multiplier on
  the NSFNet model (nominal load = 10), same four series, for a given ``H``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..analysis.erlang_bound import erlang_bound
from ..core.protection import figure2_curve
from ..routing.alternate import ControlledAlternateRouting, UncontrolledAlternateRouting
from ..routing.shadow import OttKrishnanRouting
from ..routing.single_path import SinglePathRouting
from ..topology.generators import quadrangle
from ..topology.graph import Network
from ..topology.nsfnet import nsfnet_backbone
from ..topology.paths import PathTable, build_path_table
from ..traffic.calibration import nsfnet_nominal_traffic
from ..traffic.demand import primary_link_loads
from ..traffic.generators import uniform_traffic
from ..traffic.matrix import TrafficMatrix
from .runner import PAPER_CONFIG, ReplicationConfig, SweepPoint, compare_policies

__all__ = [
    "figure2_protection_levels",
    "quadrangle_sweep",
    "nsfnet_sweep",
    "QUADRANGLE_LOADS",
    "NSFNET_LOAD_MULTIPLIERS",
]

#: Per-pair offered loads (Erlangs) spanning the paper's Figure 3/4 range,
#: bracketing the 85-95 Erlang crossover region it highlights.
QUADRANGLE_LOADS: tuple[float, ...] = (60.0, 70.0, 80.0, 85.0, 90.0, 95.0, 100.0, 110.0)

#: Load multipliers for Figures 6/7, as fractions of nominal (paper Load=10
#: is nominal; we express the x-axis in the paper's units).
NSFNET_LOAD_MULTIPLIERS: tuple[float, ...] = (6.0, 8.0, 9.0, 10.0, 11.0, 12.0, 14.0)


def figure2_protection_levels(
    capacity: int = 100,
    hops: Sequence[int] = (2, 6, 120),
    loads: Sequence[float] | None = None,
) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    """Figure 2's curves: ``{H: (loads, r_values)}``."""
    return {h: figure2_curve(capacity, h, loads) for h in hops}


def _standard_policies(
    network: Network,
    table: PathTable,
    traffic: TrafficMatrix,
    include_ott_krishnan: bool = False,
) -> dict[str, object]:
    loads = primary_link_loads(network, table, traffic)
    policies: dict[str, object] = {
        "single-path": SinglePathRouting(network, table),
        "uncontrolled": UncontrolledAlternateRouting(network, table),
        "controlled": ControlledAlternateRouting(network, table, loads),
    }
    if include_ott_krishnan:
        policies["ott-krishnan"] = OttKrishnanRouting(network, table, loads)
    return policies


def quadrangle_sweep(
    loads: Sequence[float] = QUADRANGLE_LOADS,
    capacity: int = 100,
    max_hops: int | None = None,
    config: ReplicationConfig = PAPER_CONFIG,
    include_ott_krishnan: bool = False,
) -> list[SweepPoint]:
    """Figures 3/4: blocking vs per-pair offered load on the quadrangle.

    Protection levels are recomputed at every load point from that point's
    primary demands, exactly as a deployed link would ("based on its current
    estimate of the resource demand").
    """
    network = quadrangle(capacity)
    table = build_path_table(network, max_hops=max_hops)
    points: list[SweepPoint] = []
    for per_pair in loads:
        traffic = uniform_traffic(network.num_nodes, per_pair)
        policies = _standard_policies(network, table, traffic, include_ott_krishnan)
        blocking = compare_policies(network, policies, traffic, config)  # type: ignore[arg-type]
        point = SweepPoint(load=float(per_pair), blocking=blocking)
        point.erlang_bound = erlang_bound(network, traffic)
        points.append(point)
    return points


def nsfnet_sweep(
    load_values: Sequence[float] = NSFNET_LOAD_MULTIPLIERS,
    max_hops: int | None = None,
    config: ReplicationConfig = PAPER_CONFIG,
    include_ott_krishnan: bool = False,
) -> list[SweepPoint]:
    """Figures 6/7: blocking vs load on the NSFNet model.

    ``load_values`` use the paper's axis units where 10 is the nominal
    (calibrated) matrix; other loads scale it linearly.  ``max_hops=None``
    reproduces the unlimited-alternates setting (``H = 11``); pass 6 for
    the Section-4.2.2 restriction.
    """
    network = nsfnet_backbone()
    table = build_path_table(network, max_hops=max_hops)
    nominal = nsfnet_nominal_traffic()
    points: list[SweepPoint] = []
    for load in load_values:
        traffic = nominal.scaled(load / 10.0)
        policies = _standard_policies(network, table, traffic, include_ott_krishnan)
        blocking = compare_policies(network, policies, traffic, config)  # type: ignore[arg-type]
        point = SweepPoint(load=float(load), blocking=blocking)
        point.erlang_bound = erlang_bound(network, traffic)
        points.append(point)
    return points
