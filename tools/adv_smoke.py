#!/usr/bin/env python
"""CI smoke test for the adversarial & time-varying workload layer.

Exercises the workload layer through both execution tiers a PR must not
break, on a small quadrangle scenario so the whole thing runs in seconds:

1. **trace determinism** — flash-crowd and adversarial workload traces are
   regenerated twice in separate interpreter runs; the same
   ``(workload, seed)`` pair must yield bit-identical arrivals (SHA-256
   over the trace arrays);
2. **decision determinism + simulator equivalence** — each workload trace
   replays through the serve CLI in-process and over the socket; both
   transports must report ``simulator_equivalent: true`` and identical
   statistics (the loadgen equivalence proof, extended to nonstationary
   input);
3. **recompute activity** — an adaptive replay (``--adapt-interval``)
   under the flash crowd must report a nonzero threshold-recompute count
   (the regime shift is visible to the adaptation loop, not just to the
   blocking statistics).

Each replay leaves its telemetry snapshots as JSONL in the workdir so CI
uploads them as artifacts, exactly like the other smoke jobs.

Usage: PYTHONPATH=src python tools/adv_smoke.py [--workdir DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

WORKLOADS = ("flash-crowd", "adversarial:7")

BASE_ARGS = [
    "serve", "replay",
    "--topology", "quadrangle", "--traffic", "55",
    "--policy", "controlled",
    "--duration", "12", "--warmup", "3", "--seed", "5",
    "--json",
]

#: Statistics that must not change when the transport does.
INVARIANT_KEYS = (
    "calls", "requests", "network_blocking", "alternate_fraction",
    "simulator_equivalent",
)

TRACE_DIGEST_SNIPPET = """
import hashlib
from repro.api import Scenario
scenario = Scenario(topology="quadrangle", traffic=55.0,
                    policy="controlled", workload={workload!r})
trace = scenario.make_trace(15.0, seed=5)
digest = hashlib.sha256()
for array in (trace.times, trace.od_index, trace.holding_times,
              trace.uniforms):
    digest.update(array.tobytes())
print(digest.hexdigest())
"""


def cli_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def run_checked(argv: list[str]) -> str:
    completed = subprocess.run(
        argv, capture_output=True, text=True, env=cli_env(), cwd=REPO,
    )
    if completed.returncode != 0:
        print(completed.stdout, completed.stderr, sep="\n", file=sys.stderr)
        raise SystemExit(f"{' '.join(argv[-3:])} exited {completed.returncode}")
    return completed.stdout


def trace_digest(workload: str) -> str:
    snippet = TRACE_DIGEST_SNIPPET.format(workload=workload)
    return run_checked([sys.executable, "-c", snippet]).strip()


def run_replay(workload: str, extra: list[str]) -> dict:
    out = run_checked(
        [sys.executable, "-m", "repro.cli", *BASE_ARGS,
         "--workload", workload, *extra]
    )
    return json.loads(out)


def check_telemetry(log: Path) -> int:
    if not log.is_file():
        raise SystemExit(f"no telemetry log at {log}")
    events = [json.loads(line) for line in log.read_text().splitlines() if line]
    snapshots = [e for e in events if e.get("kind") == "serve_metrics"]
    if not snapshots:
        raise SystemExit(f"{log} holds no serve_metrics events")
    return len(snapshots)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workdir", type=Path, default=Path("adv-smoke-artifacts")
    )
    args = parser.parse_args()

    workdir = args.workdir.resolve()
    if workdir.exists():
        shutil.rmtree(workdir)
    workdir.mkdir(parents=True)

    print("[1/3] workload trace determinism across interpreter runs")
    for workload in WORKLOADS:
        first, second = trace_digest(workload), trace_digest(workload)
        if first != second:
            raise SystemExit(
                f"{workload}: trace digests differ across runs "
                f"({first[:12]} != {second[:12]})"
            )
        print(f"      {workload}: sha256 {first[:16]}… (stable)")

    print("[2/3] in-process vs socket replay, verified against the simulator")
    logs = []
    for workload in WORKLOADS:
        slug = workload.replace(":", "-")
        in_log = workdir / f"adv-{slug}-in-process.jsonl"
        sock_log = workdir / f"adv-{slug}-socket.jsonl"
        logs += [in_log, sock_log]
        in_process = run_replay(workload, ["--events", str(in_log)])
        socket = run_replay(workload, ["--socket", "--events", str(sock_log)])
        for report, transport in ((in_process, "in-process"), (socket, "socket")):
            if report["simulator_equivalent"] is not True:
                raise SystemExit(
                    f"{workload} {transport} replay did not match the simulator"
                )
        for key in INVARIANT_KEYS:
            if socket[key] != in_process[key]:
                raise SystemExit(
                    f"{workload}: socket and in-process disagree on {key}: "
                    f"{socket[key]!r} != {in_process[key]!r}"
                )
        print(
            f"      {workload}: {in_process['calls']} calls, "
            f"blocking {in_process['network_blocking']:.4f}, both transports "
            "simulator-identical"
        )

    print("[3/3] adaptive replay sees the regime shift")
    adaptive_log = workdir / "adv-adaptive.jsonl"
    logs.append(adaptive_log)
    adaptive = run_replay(
        "flash-crowd",
        ["--adapt-interval", "3", "--events", str(adaptive_log)],
    )
    recomputes = adaptive["threshold_recomputes"]
    if not recomputes:
        raise SystemExit(
            "adaptive flash-crowd replay reported zero threshold recomputes"
        )
    print(
        f"      {recomputes} recomputes, last max |delta r| "
        f"{adaptive['last_refresh_delta']:g}"
    )

    for log in logs:
        count = check_telemetry(log)
        print(f"      {log.name}: {count} serve_metrics snapshots")

    print(
        "OK: workload traces are replayable, decisions are transport- and "
        "simulator-identical, and adaptation tracks the surge"
    )
    print(f"telemetry: {workdir}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
