#!/usr/bin/env python
"""CI smoke test for the lab subsystem's crash-resume guarantee.

Runs the same tiny study three ways and cross-checks them:

1. an uninterrupted baseline run (fresh store, ``lab run --json``);
2. a run in a second store that is killed with SIGINT once some — but
   not all — replications have been checkpointed;
3. ``lab resume`` on the interrupted store.

The resumed study must report cache hits for every checkpointed job and
produce per-policy blocking values bit-identical to the baseline.  The
JSONL event logs from both stores are left in the chosen workdir so CI
can upload them as artifacts.

Usage: PYTHONPATH=src python tools/lab_smoke.py [--workdir DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

STUDY_ARGS = [
    "lab", "run",
    "--topology", "quadrangle", "--traffic", "95",
    "--policies", "controlled", "uncontrolled",
    "--seeds", "4",
]
TOTAL_JOBS = 2 * 4


def cli_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def run_cli(args: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, env=cli_env(), cwd=REPO,
    )


def study_summary(completed: subprocess.CompletedProcess) -> dict:
    document = json.loads(completed.stdout)
    (study,) = document["studies"]
    return study


def count_objects(store: Path) -> int:
    objects = store / "objects"
    if not objects.is_dir():
        return 0
    return sum(1 for __ in objects.rglob("*.json"))


def interrupted_run(store: Path, duration: float, timeout: float = 120.0) -> int:
    """Start the study, SIGINT it after >=2 checkpoints, return the count."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *STUDY_ARGS,
         "--duration", str(duration), "--store", str(store)],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        env=cli_env(), cwd=REPO,
    )
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            return -1  # finished before we could interrupt: retry slower
        if count_objects(store) >= 2:
            break
        time.sleep(0.02)
    process.send_signal(signal.SIGINT)
    process.wait(timeout=60)
    # 3 = LabInterrupted handled by the CLI; 130 = the interrupt landed
    # outside the scheduler (startup/teardown) — either way the store
    # must hold a partial checkpoint.
    if process.returncode not in (3, 130):
        raise SystemExit(
            f"interrupted run exited {process.returncode}, expected 3 or 130"
        )
    checkpointed = count_objects(store)
    if not 0 < checkpointed < TOTAL_JOBS:
        raise SystemExit(
            f"interrupt was not mid-study: {checkpointed}/{TOTAL_JOBS} "
            "replications checkpointed"
        )
    return checkpointed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", type=Path, default=Path("lab-smoke-artifacts"))
    parser.add_argument("--duration", type=float, default=150.0,
                        help="simulated duration per replication")
    args = parser.parse_args()

    workdir = args.workdir.resolve()
    if workdir.exists():
        shutil.rmtree(workdir)
    workdir.mkdir(parents=True)
    baseline_store = workdir / "baseline-store"
    crash_store = workdir / "crash-store"

    print("[1/3] uninterrupted baseline run")
    completed = run_cli(STUDY_ARGS + ["--duration", str(args.duration),
                                      "--store", str(baseline_store), "--json"])
    if completed.returncode != 0:
        print(completed.stdout, completed.stderr, sep="\n", file=sys.stderr)
        raise SystemExit("baseline run failed")
    baseline = study_summary(completed)
    print(f"      {baseline['simulated']} replications simulated")

    print("[2/3] interrupted run (SIGINT after >=2 checkpoints)")
    checkpointed = -1
    duration = args.duration
    for attempt in range(3):
        if crash_store.exists():
            shutil.rmtree(crash_store)
        checkpointed = interrupted_run(crash_store, duration)
        if checkpointed > 0:
            break
        duration *= 4  # run finished too quickly to interrupt: slow it down
        print(f"      too fast to interrupt; retrying with duration={duration}")
    if checkpointed <= 0:
        raise SystemExit("could not interrupt the study mid-way")
    print(f"      killed with {checkpointed}/{TOTAL_JOBS} replications checkpointed")
    if duration != args.duration:
        raise SystemExit(
            "interrupted run used a different duration than the baseline; "
            "re-run with a larger --duration"
        )

    print("[3/3] resume and compare against the baseline")
    completed = run_cli(["lab", "resume", "--store", str(crash_store), "--json"])
    if completed.returncode != 0:
        print(completed.stdout, completed.stderr, sep="\n", file=sys.stderr)
        raise SystemExit("resume failed")
    resumed = study_summary(completed)
    if resumed["cache_hits"] < checkpointed:
        raise SystemExit(
            f"resume reused only {resumed['cache_hits']} of "
            f"{checkpointed} checkpointed replications"
        )
    if resumed["cache_hits"] + resumed["simulated"] != TOTAL_JOBS:
        raise SystemExit("resumed study did not cover every job exactly once")
    for policy, stats in baseline["policies"].items():
        if resumed["policies"][policy]["values"] != stats["values"]:
            raise SystemExit(
                f"policy {policy!r}: resumed blocking values differ from "
                "the uninterrupted baseline"
            )

    print("OK: resumed study is bit-identical to the uninterrupted baseline "
          f"({resumed['cache_hits']} cache hits + {resumed['simulated']} simulated)")
    print(f"event logs: {baseline_store / 'events'} and {crash_store / 'events'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
