#!/usr/bin/env python
"""CI smoke test for the repro.serve online admission-control service.

Replays a short NSFNet nominal-traffic trace through the serving plane
two ways and cross-checks them:

1. in-process (``serve replay --json``), where the CLI itself verifies
   the decisions bit-for-bit against :func:`repro.sim.simulator.simulate`;
2. over the asyncio JSON-lines socket server
   (``serve replay --socket --json``), same verification.

Both transports must report ``simulator_equivalent: true`` and identical
blocking and alternate-routing statistics — the socket hop may change
throughput, never decisions.  Each run leaves its telemetry snapshots as
JSONL in the chosen workdir so CI can upload them as artifacts; the
smoke also checks the logs actually contain ``serve_metrics`` events.

Usage: PYTHONPATH=src python tools/serve_smoke.py [--workdir DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

REPLAY_ARGS = [
    "serve", "replay",
    "--topology", "nsfnet", "--traffic", "nominal",
    "--policy", "controlled",
    "--duration", "8", "--warmup", "2", "--seed", "7",
    "--json",
]

#: Statistics that must not change when the transport does.
INVARIANT_KEYS = (
    "calls", "requests", "network_blocking", "alternate_fraction",
    "simulator_equivalent",
)


def cli_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def run_replay(extra: list[str]) -> dict:
    completed = subprocess.run(
        [sys.executable, "-m", "repro.cli", *REPLAY_ARGS, *extra],
        capture_output=True, text=True, env=cli_env(), cwd=REPO,
    )
    if completed.returncode != 0:
        print(completed.stdout, completed.stderr, sep="\n", file=sys.stderr)
        raise SystemExit(f"replay {' '.join(extra)} exited {completed.returncode}")
    return json.loads(completed.stdout)


def check_telemetry(log: Path) -> int:
    if not log.is_file():
        raise SystemExit(f"no telemetry log at {log}")
    events = [json.loads(line) for line in log.read_text().splitlines() if line]
    snapshots = [e for e in events if e.get("kind") == "serve_metrics"]
    if not snapshots:
        raise SystemExit(f"{log} holds no serve_metrics events")
    final = snapshots[-1]
    decided = sum(
        value for key, value in final.items()
        if key.startswith("serve_decisions_total")
    )
    if not decided > 0:
        raise SystemExit(f"{log} telemetry saw no decisions")
    return len(snapshots)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workdir", type=Path, default=Path("serve-smoke-artifacts")
    )
    args = parser.parse_args()

    workdir = args.workdir.resolve()
    if workdir.exists():
        shutil.rmtree(workdir)
    workdir.mkdir(parents=True)
    in_process_log = workdir / "serve-in-process.jsonl"
    socket_log = workdir / "serve-socket.jsonl"

    print("[1/3] in-process replay, verified against the simulator")
    in_process = run_replay(["--events", str(in_process_log)])
    if in_process["simulator_equivalent"] is not True:
        raise SystemExit("in-process replay did not match the simulator")
    print(
        f"      {in_process['calls']} calls, "
        f"blocking {in_process['network_blocking']:.4f}"
    )

    print("[2/3] socket replay through the JSON-lines server")
    socket = run_replay(["--socket", "--events", str(socket_log)])
    if socket["simulator_equivalent"] is not True:
        raise SystemExit("socket replay did not match the simulator")
    for key in INVARIANT_KEYS:
        if socket[key] != in_process[key]:
            raise SystemExit(
                f"socket and in-process replays disagree on {key}: "
                f"{socket[key]!r} != {in_process[key]!r}"
            )

    print("[3/3] telemetry logs")
    for log in (in_process_log, socket_log):
        count = check_telemetry(log)
        print(f"      {log.name}: {count} serve_metrics snapshots")

    print(
        "OK: socket and in-process replays are decision-identical to the "
        f"simulator ({in_process['calls']} calls, "
        f"blocking {in_process['network_blocking']:.4f}, "
        f"alternate fraction {in_process['alternate_fraction']:.4f})"
    )
    print(f"telemetry: {workdir}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
