#!/usr/bin/env python
"""CI smoke test for the sharded admission cluster's fault tolerance.

Two live cluster runs over the quadrangle workload, cross-checked
against the single-process engine:

1. **fault-free** — an ordered-mode cluster (3 shards) replays the
   trace; every decision must be bit-identical to
   :class:`repro.serve.engine.RequestEngine` on the same trace and the
   journal audit must show zero leaked circuits (the replay-equivalence
   oracle, exercised end to end through real worker processes);
2. **chaos** — the same workload under a seeded fault plan: shard 1
   self-crashes mid-run (``kill_after_ops``) and the router's transport
   drops/delays frames under seeded RNG control.  The run must
   *recover* (the supervisor restarts exactly the killed shard, every
   shard is up at the end), decisions must stay bit-identical on the
   fault-free prefix of the stream, any ``shard-down`` rejection must
   belong to a call whose candidate routes actually touch the killed
   shard, and — once the reservation hold-timer horizon has passed —
   the journal audit must report zero leaked circuits and zero pending
   reservations.

Artifacts (JSONL journal, telemetry snapshots, a summary) land in the
chosen workdir for CI upload.

Usage: PYTHONPATH=src python tools/cluster_smoke.py [--workdir DIR]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import shutil
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.routing.alternate import ControlledAlternateRouting  # noqa: E402
from repro.serve.chaos import ChaosConfig  # noqa: E402
from repro.serve.cluster import ClusterConfig, ClusterRouter  # noqa: E402
from repro.serve.engine import AdmitRequest, RequestEngine  # noqa: E402
from repro.serve.loadgen import (  # noqa: E402
    replay_trace,
    replay_trace_cluster,
    trace_requests,
)
from repro.sim.sigpolicy import HoldTimerPolicy, RetryPolicy  # noqa: E402
from repro.sim.trace import generate_trace  # noqa: E402
from repro.topology.generators import quadrangle  # noqa: E402
from repro.topology.paths import build_path_table  # noqa: E402
from repro.traffic.demand import primary_link_loads  # noqa: E402
from repro.traffic.generators import uniform_traffic  # noqa: E402

NUM_SHARDS = 3
KILLED_SHARD = 1
WARMUP = 1.0
DURATION = 6.0
#: Shard-1 command count at which the chaos worker self-crashes; chosen
#: to land roughly mid-trace so the fault-free prefix is substantial.
KILL_AFTER_OPS = 2000

CHAOS = ChaosConfig(
    seed=11,
    kill_after_ops={KILLED_SHARD: KILL_AFTER_OPS},
    drop_probability=0.004,
    delay_probability=0.02,
    delay_seconds=0.01,
)
RETRY = RetryPolicy(timeout=0.15, max_retries=6, backoff_factor=1.5)
HOLD = HoldTimerPolicy(duration=0.6)


def build_workload():
    network = quadrangle(100)
    table = build_path_table(network)
    traffic = uniform_traffic(network.num_nodes, 95.0)
    loads = primary_link_loads(network, table, traffic)
    policy = ControlledAlternateRouting(network, table, loads)
    trace = generate_trace(traffic, duration=DURATION, seed=7)
    return network, policy, trace


def touches_shard(probe: ClusterRouter, request: AdmitRequest, shard: int) -> bool:
    """Whether any of the request's candidate routes lands on ``shard``."""
    candidates = probe._candidates_for(request.od, request.uniform)
    if candidates is None:
        return False
    return any(
        sid == shard
        for __, ___, ____, groups in candidates
        for sid, _____ in groups
    )


def write_jsonl(path: Path, events: list[dict]) -> None:
    path.write_text("".join(json.dumps(e) + "\n" for e in events))


async def fault_free_run(network, policy, trace, reference, workdir: Path) -> dict:
    config = ClusterConfig(num_shards=NUM_SHARDS, mode="ordered")
    router = ClusterRouter(network, policy, config)
    async with router:
        report = await replay_trace_cluster(router, trace, warmup=WARMUP)
        audit = await router.audit()
        telemetry = router.telemetry.snapshot()
    mismatches = sum(
        1 for mine, theirs in zip(report.decisions, reference.decisions)
        if mine != theirs
    )
    if mismatches:
        raise SystemExit(
            f"fault-free cluster diverged from the engine on "
            f"{mismatches}/{len(report.decisions)} decisions"
        )
    if not audit["consistent"] or audit["leaked_circuits"]:
        raise SystemExit(f"fault-free audit not clean: {audit}")
    write_jsonl(workdir / "cluster-fault-free-telemetry.jsonl",
                [{"kind": "cluster_metrics", **telemetry}])
    return {
        "requests": len(report.decisions),
        "blocking": report.result.network_blocking,
        "decisions_per_second": report.decisions_per_second,
        "audit": {k: audit[k] for k in
                  ("consistent", "leaked_circuits", "held_calls")},
    }


async def chaos_run(network, policy, trace, reference, workdir: Path) -> dict:
    config = ClusterConfig(
        num_shards=NUM_SHARDS,
        mode="ordered",
        retry=RETRY,
        hold=HOLD,
        chaos=CHAOS,
        journal_path=str(workdir / "cluster-chaos-journal.jsonl"),
    )
    router = ClusterRouter(network, policy, config)
    #: Unstarted twin used purely to answer "do this call's candidate
    #: routes touch the killed shard" — same partitioning, no processes.
    probe = ClusterRouter(network, policy,
                          ClusterConfig(num_shards=NUM_SHARDS))
    requests = trace_requests(trace)
    async with router:
        report = await replay_trace_cluster(router, trace, warmup=WARMUP)
        restarts = dict(router.supervisor.restarts)
        down_during = sorted(router._down)
        # Let the hold-timer horizon pass so any reservation orphaned by
        # a dropped abort or the crash itself has been reaped, then audit.
        await asyncio.sleep(HOLD.duration + 0.8)
        audit = await router.audit()
        telemetry = router.telemetry.snapshot()

    if restarts.get(KILLED_SHARD, 0) < 1:
        raise SystemExit(
            f"shard {KILLED_SHARD} was never restarted: {restarts}"
        )
    innocents = {sid: n for sid, n in restarts.items()
                 if n and sid != KILLED_SHARD}
    if innocents:
        raise SystemExit(f"shards restarted without being killed: {innocents}")
    if down_during:
        raise SystemExit(f"shards still down at end of run: {down_during}")
    if not audit["consistent"] or audit["leaked_circuits"]:
        raise SystemExit(f"post-recovery audit not clean: {audit}")
    if audit["pending_reservations"]:
        raise SystemExit(
            f"{audit['pending_reservations']} reservations survived the "
            "hold-timer horizon"
        )

    first_mismatch = None
    for i, (mine, theirs) in enumerate(
        zip(report.decisions, reference.decisions)
    ):
        if mine != theirs:
            first_mismatch = i
            break
    prefix = len(requests) if first_mismatch is None else first_mismatch
    if prefix < len(requests) // 4:
        raise SystemExit(
            f"decisions diverged at request {prefix}/{len(requests)}, "
            "before the injected crash could have fired"
        )

    unavoidable = 0
    for request, decision in zip(requests, report.decisions):
        if decision.reason != "shard-down":
            continue
        unavoidable += 1
        if not touches_shard(probe, request, KILLED_SHARD):
            raise SystemExit(
                f"call {request.id} was rejected shard-down but none of "
                f"its routes touch shard {KILLED_SHARD}"
            )

    write_jsonl(workdir / "cluster-chaos-telemetry.jsonl",
                [{"kind": "cluster_metrics", **telemetry}])
    journal = workdir / "cluster-chaos-journal.jsonl"
    if not journal.is_file() or not journal.stat().st_size:
        raise SystemExit("chaos run left no journal JSONL")
    return {
        "requests": len(report.decisions),
        "restarts": restarts,
        "fault_free_prefix": prefix,
        "shard_down_rejections": unavoidable,
        "audit": {k: audit[k] for k in
                  ("consistent", "leaked_circuits", "pending_reservations")},
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workdir", type=Path, default=Path("cluster-smoke-artifacts")
    )
    args = parser.parse_args()
    workdir = args.workdir.resolve()
    if workdir.exists():
        shutil.rmtree(workdir)
    workdir.mkdir(parents=True)

    network, policy, trace = build_workload()
    engine = RequestEngine(network, policy)
    reference = replay_trace(engine, trace, warmup=WARMUP)

    print("[1/2] fault-free ordered cluster vs engine (bit-equivalence)")
    started = time.perf_counter()
    fault_free = asyncio.run(
        fault_free_run(network, policy, trace, reference, workdir)
    )
    print(
        f"      {fault_free['requests']} decisions identical, blocking "
        f"{fault_free['blocking']:.4f}, "
        f"{fault_free['decisions_per_second']:,.0f}/s"
    )

    print("[2/2] seeded chaos: kill shard 1 mid-run + message drop/delay")
    chaos = asyncio.run(chaos_run(network, policy, trace, reference, workdir))
    print(
        f"      recovered (restarts {chaos['restarts']}), fault-free "
        f"prefix {chaos['fault_free_prefix']}/{chaos['requests']}, "
        f"{chaos['shard_down_rejections']} shard-down rejections (all on "
        f"routes touching shard {KILLED_SHARD}), audit {chaos['audit']}"
    )

    summary = {
        "kind": "cluster_smoke_summary",
        "elapsed_seconds": time.perf_counter() - started,
        "fault_free": fault_free,
        "chaos": chaos,
    }
    write_jsonl(workdir / "cluster-smoke-summary.jsonl", [summary])
    print(f"OK: artifacts in {workdir}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
