#!/usr/bin/env python
"""CI smoke test for the online protection-level control loop.

Exercises :mod:`repro.control` end to end on short seeded replays, fast
enough for every PR:

1. **decision determinism** — the same closed-loop replay (workload,
   seed, controller) run in two separate interpreter processes must
   report the same ``decisions_sha256``: the loop is driven on request
   time, so its threshold trajectory is a pure function of the trace;
2. **safety** — every run must report zero
   :class:`~repro.control.controllers.SafetyClamp` violations; the
   Theorem-1 floor is never crossed, whatever the estimator believes;
3. **serve integration** — ``serve replay --controller`` must land hot
   swaps (``policy_epoch`` > 0), expose the epoch and swap trail in its
   ``--json`` report, and keep the controller digest identical to the
   ``repro control replay`` path;
4. **rollback drill** — the same replay with ``--pin-epoch 0`` must
   keep proposing (steps recorded, visible in telemetry) while applying
   nothing: the policy epoch stays 0, which is the operator's rollback
   story from docs/OPERATIONS.md.

Every ``--json`` report and telemetry JSONL lands in the workdir so CI
uploads them as artifacts, exactly like the other smoke jobs.

Usage: PYTHONPATH=src python tools/control_smoke.py [--workdir DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

WORKLOAD = "adversarial:0"

CONTROL_ARGS = [
    "control", "replay",
    "--workload", WORKLOAD,
    "--duration", "25", "--warmup", "5", "--seed", "3",
    "--controller", "gradient", "--control-interval", "5",
    "--json",
]

SERVE_ARGS = [
    "serve", "replay",
    "--policy", "length-adaptive", "--hops", "6", "--load-scale", "1.1",
    "--workload", WORKLOAD,
    "--duration", "25", "--warmup", "5", "--seed", "3",
    "--controller", "gradient", "--control-interval", "5",
    "--json",
]


def cli_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def run_cli(argv: list[str]) -> dict:
    completed = subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, env=cli_env(), cwd=REPO,
    )
    if completed.returncode != 0:
        print(completed.stdout, completed.stderr, sep="\n", file=sys.stderr)
        raise SystemExit(f"{' '.join(argv[:2])} exited {completed.returncode}")
    return json.loads(completed.stdout)


def save(workdir: Path, name: str, report: dict) -> None:
    (workdir / name).write_text(json.dumps(report, indent=2, sort_keys=True))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workdir", type=Path, default=Path("control-smoke-artifacts")
    )
    args = parser.parse_args()

    workdir = args.workdir.resolve()
    if workdir.exists():
        shutil.rmtree(workdir)
    workdir.mkdir(parents=True)

    print("[1/4] closed-loop decision determinism across interpreter runs")
    first = run_cli(CONTROL_ARGS)
    second = run_cli(CONTROL_ARGS)
    save(workdir, "control-replay-first.json", first)
    save(workdir, "control-replay-second.json", second)
    if first["decisions_sha256"] != second["decisions_sha256"]:
        raise SystemExit(
            "controller decisions differ across runs: "
            f"{first['decisions_sha256'][:12]} != "
            f"{second['decisions_sha256'][:12]}"
        )
    if not first["trajectory"]:
        raise SystemExit("controller never stepped on a 25-unit replay")
    if first["policy_epoch"] < 1:
        raise SystemExit("controller stepped but no hot swap landed")
    print(
        f"      {len(first['trajectory'])} steps, epoch "
        f"{first['policy_epoch']}, sha256 "
        f"{first['decisions_sha256'][:16]}… (stable)"
    )

    print("[2/4] zero Theorem-1 safety-clamp violations")
    for name, report in (("first", first), ("second", second)):
        if report["clamp_violations"] != 0:
            raise SystemExit(
                f"{name} run reported {report['clamp_violations']} "
                "safety-clamp violations"
            )
    print("      both runs: 0 violations")

    print("[3/4] serve replay --controller exposes the epoch + swap trail")
    telemetry = workdir / "control-serve.jsonl"
    serve = run_cli([*SERVE_ARGS, "--events", str(telemetry)])
    save(workdir, "serve-replay-controller.json", serve)
    if serve["policy_epoch"] < 1:
        raise SystemExit("serve replay with --controller never swapped")
    if not serve["swap_events"]:
        raise SystemExit("serve replay report carries no swap events")
    if serve["control"]["clamp_violations"] != 0:
        raise SystemExit("serve replay reported safety-clamp violations")
    if serve["control"]["decisions_sha256"] != first["decisions_sha256"]:
        raise SystemExit(
            "serve-plane controller digest differs from the control CLI's"
        )
    if not telemetry.is_file() or not telemetry.read_text().strip():
        raise SystemExit(f"no telemetry written to {telemetry}")
    print(
        f"      epoch {serve['policy_epoch']}, "
        f"{len(serve['swap_events'])} swaps, digest matches the control CLI"
    )

    print("[4/4] rollback drill: --pin-epoch 0 proposes but applies nothing")
    pinned = run_cli([*CONTROL_ARGS, "--pin-epoch", "0"])
    save(workdir, "control-replay-pinned.json", pinned)
    if pinned["policy_epoch"] != 0:
        raise SystemExit(
            f"pinned replay still swapped to epoch {pinned['policy_epoch']}"
        )
    if not pinned["trajectory"]:
        raise SystemExit("pinned replay recorded no proposals")
    if any(step["applied"] for step in pinned["trajectory"]):
        raise SystemExit("pinned replay applied a proposal")
    print(
        f"      {len(pinned['trajectory'])} proposals recorded, "
        "0 applied, epoch stayed 0"
    )

    print(
        "OK: control decisions are replay-deterministic, the Theorem-1 "
        "clamp never lifted, swaps land and version the serve plane, and "
        "epoch pinning rolls back cleanly"
    )
    print(f"artifacts: {workdir}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
