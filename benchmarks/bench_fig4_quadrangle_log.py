"""FIG4 — Figure 4: the quadrangle sweep on a log scale (low-load behavior).

Figure 4 plots the same experiment as Figure 3 but logarithmically to show
that at low loads alternate routing (controlled or not) drives blocking
orders of magnitude below single-path routing, tracking the Erlang bound.
"""

from __future__ import annotations

import math

from repro.experiments.figures import quadrangle_sweep
from repro.experiments.report import format_table


def _log10(value: float) -> float:
    return math.log10(value) if value > 0 else float("-inf")


def test_fig4_quadrangle_low_load_log(benchmark, bench_config):
    # Emphasize the low-load region; longer runs resolve the small
    # probabilities that the log plot highlights.
    config = bench_config.scaled(duration_factor=2.0)
    loads = (60.0, 70.0, 80.0, 85.0, 90.0)
    points = benchmark.pedantic(
        quadrangle_sweep,
        kwargs={"loads": loads, "config": config},
        rounds=1,
        iterations=1,
    )
    rows = []
    for point in points:
        rows.append(
            [
                point.load,
                _log10(point.blocking["single-path"].mean),
                _log10(point.blocking["uncontrolled"].mean),
                _log10(point.blocking["controlled"].mean),
                _log10(point.erlang_bound or 0.0),
            ]
        )
    print()
    print("Figure 4 (regenerated): log10 blocking, quadrangle")
    print(
        format_table(
            ["load", "log10 single", "log10 unctl", "log10 ctl", "log10 bound"], rows
        )
    )

    by_load = {p.load: p.blocking for p in points}
    # At 70-85 E single-path blocks measurably while alternate routing is
    # orders of magnitude lower (often zero in finite runs).
    for load in (70.0, 80.0):
        single = by_load[load]["single-path"].mean
        assert single > 0.0
        assert by_load[load]["uncontrolled"].mean <= single / 2
        assert by_load[load]["controlled"].mean <= single / 2
    # Controlled tracks uncontrolled at low loads (its r's barely bite).
    for load in (60.0, 70.0):
        assert abs(
            by_load[load]["controlled"].mean - by_load[load]["uncontrolled"].mean
        ) <= 0.005
