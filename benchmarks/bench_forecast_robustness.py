"""EXP-ROBUST — concluding-remarks claim: insensitivity to traffic estimates.

The network is engineered (primaries, protection levels) for the nominal
NSFNet forecast, but actual demand is the forecast perturbed by mean-one
lognormal noise per O-D pair.  The paper's claim: alternate routing makes
blocking less sensitive to such misforecasts.  Measured: as the forecast
error grows, single-path blocking degrades roughly twice as fast as the
controlled scheme's, and under misforecast the controlled scheme even beats
uncontrolled routing (its nominal-sized reservations still tame the
avalanche on the overloaded corridors).
"""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.experiments.robustness import forecast_error_sweep
from repro.topology.nsfnet import nsfnet_backbone
from repro.topology.paths import build_path_table
from repro.traffic.calibration import nsfnet_nominal_traffic

SIGMAS = (0.0, 0.3, 0.6, 1.0)


def run(config):
    network = nsfnet_backbone()
    table = build_path_table(network)
    return forecast_error_sweep(
        network, table, nsfnet_nominal_traffic(), sigmas=SIGMAS, config=config
    )


def test_alternate_routing_absorbs_forecast_error(benchmark, bench_config):
    outcome = benchmark.pedantic(run, args=(bench_config,), rounds=1, iterations=1)
    rows = [
        [sigma, stats["single-path"].mean, stats["uncontrolled"].mean,
         stats["controlled"].mean]
        for sigma, stats in outcome.items()
    ]
    print()
    print("Forecast-error sweep, NSFNet engineered for nominal (regenerated):")
    print(format_table(["sigma", "single-path", "uncontrolled", "controlled"], rows))

    base = outcome[0.0]
    worst = outcome[max(SIGMAS)]
    single_degradation = worst["single-path"].mean - base["single-path"].mean
    controlled_degradation = worst["controlled"].mean - base["controlled"].mean
    # The claim: controlled degrades materially less than single-path.
    assert controlled_degradation < single_degradation * 0.8
    # And at every error level the guarantee holds.
    for stats in outcome.values():
        assert stats["controlled"].mean <= stats["single-path"].mean + 0.01
