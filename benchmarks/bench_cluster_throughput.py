"""CLUSTER — aggregate decision throughput of the sharded admission cluster.

One workload, measured twice end to end over real sockets with real
processes: the symmetric quadrangle (the paper's canonical topology)
under 95% uniform load, its admit/release stream call-partitioned across
four barrier-released loadgen client processes.

* **baseline** — the single-process socket server from PR 5
  (:class:`~repro.serve.server.ServeServer`, JSON lines, micro-batched
  engine), clients streaming pre-encoded lines;
* **cluster** — four shard worker processes behind a pipelined
  :class:`~repro.serve.cluster.ClusterRouter`, clients streaming
  pre-pickled batch frames.

The speedup bar is **hardware-aware**: the cluster's win is parallel
shard decisions, so the nominal 3x bar presumes the shards actually get
cores.  The bar scales by ``min(1, (cpu_count - 1) / num_shards)`` —
full 3x with five or more cores, proportionally less below, zero on a
single-core box where nine processes time-slice one CPU and only the
wire-protocol efficiency (batched pickle frames vs per-request JSON
lines) can show through.  ``REPRO_BENCH_SPEEDUP_SCALE`` overrides the
derived scale, as in the other benchmarks.

Results land in ``BENCH_cluster_throughput.json`` at the repo root,
with the machine context recorded so a reader can judge the number.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.routing.alternate import ControlledAlternateRouting
from repro.serve.loadgen import measure_cluster_throughput
from repro.sim.trace import generate_trace
from repro.topology.generators import quadrangle
from repro.topology.paths import build_path_table
from repro.traffic.demand import primary_link_loads
from repro.traffic.generators import uniform_traffic

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUTPUT = _REPO_ROOT / "BENCH_cluster_throughput.json"

_NUM_SHARDS = 4
_CLIENTS = 4
_BATCH_SIZE = 1024

_CPU_COUNT = os.cpu_count() or 1
_SCALE_ENV = os.environ.get("REPRO_BENCH_SPEEDUP_SCALE")
if _SCALE_ENV is not None:
    _SPEEDUP_SCALE = float(_SCALE_ENV)
else:
    _SPEEDUP_SCALE = min(1.0, max(0.0, (_CPU_COUNT - 1) / _NUM_SHARDS))
_CLUSTER_SPEEDUP_BAR = 3.0 * _SPEEDUP_SCALE


def test_cluster_throughput(bench_config):
    network = quadrangle(100)
    table = build_path_table(network)
    traffic = uniform_traffic(network.num_nodes, 95.0)
    loads = primary_link_loads(network, table, traffic)
    policy = ControlledAlternateRouting(network, table, loads)
    trace = generate_trace(
        traffic, bench_config.measured_duration + 10.0, seed=42
    )

    report = measure_cluster_throughput(
        network, policy, trace,
        num_shards=_NUM_SHARDS, clients=_CLIENTS, batch_size=_BATCH_SIZE,
    )
    assert report["cluster_admitted"] > 0, "cluster admitted nothing"
    if _CLUSTER_SPEEDUP_BAR > 0:
        assert report["speedup"] >= _CLUSTER_SPEEDUP_BAR, (
            f"cluster {report['speedup']:.2f}x below the "
            f"{_CLUSTER_SPEEDUP_BAR:g}x bar "
            f"({_CPU_COUNT} cpus, scale {_SPEEDUP_SCALE:g})"
        )

    document = {
        "schema": "repro-bench-cluster-throughput-v1",
        "fidelity": {
            "measured_duration": bench_config.measured_duration,
            "speedup_scale": _SPEEDUP_SCALE,
            "speedup_bar": _CLUSTER_SPEEDUP_BAR,
            "cpu_count": _CPU_COUNT,
        },
        "workload": (
            "quadrangle(100) at 95% uniform load, controlled alternate "
            "routing, simulator-ordered admit/release stream partitioned "
            f"across {_CLIENTS} client processes"
        ),
        "cluster": report,
    }
    _OUTPUT.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print()
    print(
        f"baseline: {report['baseline_decisions_per_sec']:,.0f} decisions/sec"
        " (single-process JSON socket server)"
    )
    print(
        f"cluster : {report['cluster_decisions_per_sec']:,.0f} decisions/sec"
        f"  ({report['speedup']:.2f}x, {_NUM_SHARDS} shards, "
        f"bar {_CLUSTER_SPEEDUP_BAR:g}x on {_CPU_COUNT} cpus)"
    )
    print(f"wrote {_OUTPUT}")
