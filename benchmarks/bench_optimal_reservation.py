"""EXP-MG-SIM — Equation 15 vs the empirically optimal reservation.

The simulation companion to the Section-3.2 Mitra-Gibbens comparison: sweep
a uniform reservation on the symmetric quadrangle in the crossover region
and locate the blocking-minimizing ``r``.  The paper's claim, checked
empirically: the Equation-15 level sits within a couple of circuits of the
optimum and costs almost nothing in blocking.
"""

from __future__ import annotations

from repro.experiments.optimal_r import empirical_optimal_reservation
from repro.experiments.report import format_table
from repro.topology.generators import quadrangle
from repro.topology.paths import build_path_table
from repro.traffic.generators import uniform_traffic

R_VALUES = (0, 2, 4, 6, 8, 11, 14, 18, 25, 40, 100)


def run(config):
    network = quadrangle(100)
    table = build_path_table(network)
    outcome = {}
    for per_pair in (90.0, 95.0):
        traffic = uniform_traffic(4, per_pair)
        outcome[per_pair] = empirical_optimal_reservation(
            network, table, traffic, R_VALUES, config
        )
    return outcome


def test_equation15_near_empirical_optimum(benchmark, bench_config):
    outcome = benchmark.pedantic(run, args=(bench_config,), rounds=1, iterations=1)
    for load, result in outcome.items():
        rows = [[r, stat.mean, stat.half_width] for r, stat in sorted(result["sweep"].items())]
        print()
        print(f"Uniform reservation sweep, quadrangle {load:g} E (regenerated):")
        print(format_table(["r", "blocking", "ci"], rows))
        print(
            f"empirical best r = {result['best_r']}, "
            f"Equation-15 r = {result['equation15_r']}, "
            f"penalty = {result['penalty']:.4f}"
        )

    for load, result in outcome.items():
        sweep = result["sweep"]
        # The sweep is meaningful: no reservation is clearly bad here.
        assert sweep[0].mean > sweep[result["best_r"]].mean
        # Equation 15 costs almost nothing against the empirical optimum.
        assert result["penalty"] < 0.006
        # And full protection (single-path behaviour) is no better than the
        # optimum either - the alternate tier is genuinely earning its keep
        # or at least not hurting.
        assert sweep[100].mean >= sweep[result["best_r"]].mean - 0.001
