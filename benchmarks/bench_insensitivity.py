"""EXT-INSENS — robustness of the results to the holding-time distribution.

The paper assumes exponential holding (assumption A2's world).  For the
*single-path* network the Erlang insensitivity theorem says the holding
distribution is irrelevant beyond its mean; for the state-dependent
alternate-routing dynamics no such theorem exists.  This bench sweeps
deterministic / exponential / bursty (hyperexponential, squared CV 4)
holding times on the quadrangle's crossover point and shows the paper's
qualitative conclusions are not an artifact of the exponential assumption.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import format_table
from repro.routing.alternate import (
    ControlledAlternateRouting,
    UncontrolledAlternateRouting,
)
from repro.routing.single_path import SinglePathRouting
from repro.sim.simulator import simulate
from repro.sim.trace import generate_trace
from repro.topology.generators import quadrangle
from repro.topology.paths import build_path_table
from repro.traffic.demand import primary_link_loads
from repro.traffic.generators import uniform_traffic

DISTRIBUTIONS = ("deterministic", "exponential", "hyperexponential")


def run(config):
    network = quadrangle(100)
    table = build_path_table(network)
    traffic = uniform_traffic(4, 95.0)
    loads = primary_link_loads(network, table, traffic)
    policies = {
        "single-path": SinglePathRouting(network, table),
        "uncontrolled": UncontrolledAlternateRouting(network, table),
        "controlled": ControlledAlternateRouting(network, table, loads),
    }
    outcome = {}
    for distribution in DISTRIBUTIONS:
        by_policy = {}
        for name, policy in policies.items():
            values = [
                simulate(
                    network,
                    policy,
                    generate_trace(traffic, config.duration, seed, holding=distribution),
                    config.warmup,
                ).network_blocking
                for seed in config.seeds
            ]
            by_policy[name] = float(np.mean(values))
        outcome[distribution] = by_policy
    return outcome


def test_holding_time_insensitivity(benchmark, bench_config):
    outcome = benchmark.pedantic(run, args=(bench_config,), rounds=1, iterations=1)
    rows = [
        [dist, data["single-path"], data["uncontrolled"], data["controlled"]]
        for dist, data in outcome.items()
    ]
    print()
    print("Holding-time distributions, quadrangle 95 E (regenerated):")
    print(format_table(["holding", "single-path", "uncontrolled", "controlled"], rows))

    # Single-path blocking is theorem-grade insensitive: all three agree.
    singles = [data["single-path"] for data in outcome.values()]
    assert max(singles) - min(singles) < 0.02
    # The qualitative story holds under every distribution at this load:
    # uncontrolled collapsed, controlled at or below single-path.
    for data in outcome.values():
        assert data["uncontrolled"] > data["single-path"]
        assert data["controlled"] <= data["single-path"] + 0.01
