"""EXP-FAIR — Section 4.2.2: blocking skew across O-D pairs (H = 6).

The paper: per-pair blocking is most skewed under single-path routing and
least skewed under uncontrolled alternate routing — the fairness dividend of
sharing resources more freely — with the controlled scheme in between.
Implementation: :func:`repro.experiments.prose.fairness_comparison`.
"""

from __future__ import annotations

from repro.experiments.prose import fairness_comparison
from repro.experiments.report import format_table


def test_alternate_routing_reduces_blocking_skew(benchmark, bench_config):
    reports = benchmark.pedantic(
        fairness_comparison, args=(bench_config,), rounds=1, iterations=1
    )
    rows = [
        [name, r.mean, r.coefficient_of_variation, r.gini, r.max, r.min]
        for name, r in reports.items()
    ]
    print()
    print("Per-O-D blocking skew, NSFNet H=6, load 11 (regenerated):")
    print(format_table(["scheme", "mean", "cov", "gini", "max", "min"], rows))

    # The paper's ordering at the extremes: single-path most skewed,
    # uncontrolled least.  (Controlled sits between them but converges to
    # single-path at above-nominal loads where its r's bite, so only its
    # position relative to uncontrolled is statistically stable.)
    assert reports["single-path"].more_skewed_than(reports["uncontrolled"])
    assert reports["controlled"].more_skewed_than(reports["uncontrolled"])
    # Gini agrees with the coefficient-of-variation ordering at the extremes.
    assert reports["single-path"].gini > reports["uncontrolled"].gini
    # Worst-served pair suffers far more under single-path routing.
    assert reports["single-path"].max > reports["uncontrolled"].max
