"""EXT-MR — multirate calls (the paper's stated future work).

Two QoS classes — 1-unit audio and 4-unit video — share the quadrangle.
Checks (a) the simulator against the exact Kaufman-Roberts per-class
blocking on an isolated link, and (b) that controlled alternate routing with
the conservative multirate protection levels preserves the
never-worse-than-single-path guarantee for the mixed workload.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multirate import (
    TrafficClass,
    multirate_blocking,
    multirate_protection_level,
)
from repro.experiments.report import format_table
from repro.routing.alternate import ControlledAlternateRouting, UncontrolledAlternateRouting
from repro.routing.single_path import SinglePathRouting
from repro.sim.simulator import simulate
from repro.sim.trace import generate_multiclass_trace
from repro.topology.generators import line, quadrangle
from repro.topology.paths import build_path_table
from repro.traffic.demand import multiclass_unit_loads
from repro.traffic.generators import uniform_traffic


def validate_against_kaufman_roberts(seeds):
    network = line(2, 40)
    table = build_path_table(network)
    classes = [
        ("audio", uniform_traffic(2, 16.0), 1),
        ("video", uniform_traffic(2, 3.0), 4),
    ]
    policy = SinglePathRouting(network, table)
    measured = {"audio": [], "video": []}
    for seed in seeds:
        trace = generate_multiclass_trace(classes, 210.0, seed)
        result = simulate(network, policy, trace, warmup=10.0)
        for name, value in result.class_blocking().items():
            measured[name].append(value)
    # Each directed link carries one direction only: 16 E audio + 3 E video.
    exact = multirate_blocking(
        [TrafficClass("audio", 16.0, 1), TrafficClass("video", 3.0, 4)], 40
    )
    return {name: float(np.mean(vals)) for name, vals in measured.items()}, exact


def run_mixed_network(config):
    network = quadrangle(100)
    table = build_path_table(network)
    classes = [
        ("audio", uniform_traffic(4, 55.0), 1),
        ("video", uniform_traffic(4, 8.0), 4),
    ]
    unit_loads = multiclass_unit_loads(network, table, classes)
    levels = np.array(
        [
            multirate_protection_level(
                unit_loads[link.index], link.capacity, table.max_hops, 4
            )
            for link in network.links
        ],
        dtype=np.int64,
    )
    policies = {
        "single-path": SinglePathRouting(network, table),
        "uncontrolled": UncontrolledAlternateRouting(network, table),
        "controlled-mr": ControlledAlternateRouting(
            network, table, unit_loads, protection_override=levels
        ),
    }
    blocking = {name: [] for name in policies}
    video = {name: [] for name in policies}
    for seed in config.seeds:
        trace = generate_multiclass_trace(classes, config.duration, seed)
        for name, policy in policies.items():
            result = simulate(network, policy, trace, config.warmup)
            blocking[name].append(result.network_blocking)
            video[name].append(result.class_blocking().get("video", 0.0))
    return (
        {name: float(np.mean(vals)) for name, vals in blocking.items()},
        {name: float(np.mean(vals)) for name, vals in video.items()},
        levels,
    )


def test_multirate_kaufman_roberts_validation(benchmark, bench_config):
    measured, exact = benchmark.pedantic(
        validate_against_kaufman_roberts,
        args=(bench_config.seeds,),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ["class", "simulated", "Kaufman-Roberts"],
            [[name, measured[name], exact[name]] for name in ("audio", "video")],
        )
    )
    for name in ("audio", "video"):
        assert measured[name] == pytest.approx(exact[name], rel=0.35, abs=0.01)
    # Wider calls block more, in both views.
    assert exact["video"] > exact["audio"]
    assert measured["video"] > measured["audio"]


def test_multirate_guarantee_on_mixed_network(benchmark, bench_config):
    blocking, video, levels = benchmark.pedantic(
        run_mixed_network, args=(bench_config,), rounds=1, iterations=1
    )
    print()
    print("Mixed audio(1u) + video(4u), quadrangle C=100 (regenerated):")
    print(
        format_table(
            ["policy", "blocking", "video blocking"],
            [[name, blocking[name], video[name]] for name in blocking],
        )
    )
    print(f"multirate protection levels: {sorted(set(levels.tolist()))}")

    # The conservative multirate levels preserve the guarantee.
    assert blocking["controlled-mr"] <= blocking["single-path"] + 0.01
    # Video (wide) calls suffer more than audio under every policy.
    for name in blocking:
        assert video[name] >= blocking[name] - 0.01

