"""THM1 — numeric verification of Theorem 1 and tightness of its bound.

Sweeps random link scenarios (capacity, protection, demand, effective rate,
non-increasing overflow profiles), computes the *exact* expected primary
displacement by first-passage analysis, and confirms the Theorem-1 bound
holds everywhere while reporting how loose it runs.
"""

from __future__ import annotations

import numpy as np

from repro.core.theorem import verify_theorem1
from repro.experiments.report import format_table


def run_verification(trials: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    checks = []
    for __ in range(trials):
        capacity = int(rng.integers(2, 80))
        protection = int(rng.integers(0, capacity + 1))
        demand = float(rng.uniform(0.05, 2.0)) * capacity
        nu = demand * float(rng.uniform(0.3, 1.0))
        overflow = np.sort(rng.uniform(0.0, 2.0 * capacity, size=capacity))[::-1].copy()
        checks.append(
            verify_theorem1(demand, capacity, protection, overflow, primary_rate=nu)
        )
    return checks


def test_theorem1_bound_holds_and_tightness(benchmark):
    checks = benchmark.pedantic(run_verification, args=(300,), rounds=1, iterations=1)

    holds = sum(1 for c in checks if c.holds)
    nontrivial = [c for c in checks if c.bound > 1e-12 and c.worst_displacement > 0]
    ratios = [c.worst_displacement / c.bound for c in nontrivial]
    print()
    print(
        format_table(
            ["trials", "bound holds", "median L/bound", "max L/bound"],
            [[len(checks), holds, float(np.median(ratios)), float(np.max(ratios))]],
        )
    )

    assert holds == len(checks)
    # The bound is genuinely a bound, not an equality: some slack everywhere.
    assert max(ratios) <= 1.0 + 1e-9
    # But it is not vacuous: in a fair share of scenarios the exact
    # displacement reaches a sizable fraction of the bound.
    assert max(ratios) > 0.3
