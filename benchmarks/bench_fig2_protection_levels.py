"""FIG2 — Figure 2: protection level ``r`` vs primary load ``Lambda``.

Paper: ``C = 100``, curves for ``H = 2, 6, 120`` over ``Lambda <= C``; ``r``
grows with load and with ``H`` but the growth with ``H`` is *contained*.
"""

from __future__ import annotations

from repro.experiments.figures import figure2_protection_levels
from repro.experiments.report import format_table


def test_fig2_protection_level_curves(benchmark):
    curves = benchmark(figure2_protection_levels)

    loads = curves[2][0]
    rows = [
        [int(load)] + [int(curves[h][1][i]) for h in (2, 6, 120)]
        for i, load in enumerate(loads)
        if load % 10 == 0
    ]
    print()
    print("Figure 2 (regenerated): r vs Lambda, C = 100")
    print(format_table(["Lambda", "r(H=2)", "r(H=6)", "r(H=120)"], rows))

    r2, r6, r120 = (curves[h][1] for h in (2, 6, 120))
    # Shape: monotone in load and in H.
    assert (r2[1:] >= r2[:-1]).all()
    assert (r6 >= r2).all()
    assert (r120 >= r6).all()
    # Containment: at half load even H=120 needs only a handful of circuits.
    assert r120[49] <= 15
    # Spot values pinned by the paper's Table 1 (C=100 column overlaps).
    assert r6[73] == 7      # Lambda = 74
    assert r6[86] == 16     # Lambda = 87
    assert r120[99] >= 45   # near capacity the curves climb steeply
