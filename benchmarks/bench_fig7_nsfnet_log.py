"""FIG7 — Figure 7: the NSFNet sweep on a log scale (low-load emphasis).

Below the nominal load the uncontrolled and controlled schemes run orders of
magnitude below single-path routing and close to the Erlang bound.
"""

from __future__ import annotations

import math

from repro.experiments.figures import nsfnet_sweep
from repro.experiments.report import format_table


def _log10(value: float) -> float:
    return math.log10(value) if value > 0 else float("-inf")


def test_fig7_nsfnet_low_load_log(benchmark, bench_config):
    config = bench_config.scaled(duration_factor=2.0)
    load_values = (6.0, 8.0, 9.0, 10.0)
    points = benchmark.pedantic(
        nsfnet_sweep,
        kwargs={"load_values": load_values, "config": config},
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            point.load,
            _log10(point.blocking["single-path"].mean),
            _log10(point.blocking["uncontrolled"].mean),
            _log10(point.blocking["controlled"].mean),
            _log10(point.erlang_bound or 0.0),
        ]
        for point in points
    ]
    print()
    print("Figure 7 (regenerated): log10 blocking, NSFNet H=11")
    print(format_table(["load", "log10 single", "log10 unctl", "log10 ctl", "log10 bound"], rows))

    by_load = {p.load: p.blocking for p in points}
    for load in (8.0, 9.0):
        single = by_load[load]["single-path"].mean
        assert single > 0.0
        assert by_load[load]["uncontrolled"].mean < single
        assert by_load[load]["controlled"].mean < single
    # At the lowest load the alternate schemes all but eliminate blocking.
    assert by_load[6.0]["controlled"].mean < 0.005
