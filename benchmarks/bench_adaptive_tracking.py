"""EXT-ADAPT — online protection adaptation under nonstationary load.

The paper's deployment story has links estimating their primary demand from
passing call set-ups.  This bench makes the demand *move* (a mid-run surge
from 0.8x to 1.3x nominal on the NSFNet model) and compares:

* single-path routing (the floor the guarantee references);
* static controlled routing sized for the *pre-surge* load (a stale
  estimate);
* adaptive controlled routing re-estimating every 5 time units.

State protection's robustness predicts the stale policy remains safe; the
adaptive one should match or beat it while never undercutting single-path.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import format_table
from repro.routing.adaptive import simulate_adaptive
from repro.routing.alternate import ControlledAlternateRouting
from repro.routing.single_path import SinglePathRouting
from repro.sim.simulator import simulate
from repro.topology.nsfnet import nsfnet_backbone
from repro.topology.paths import build_path_table
from repro.traffic.calibration import nsfnet_nominal_traffic
from repro.traffic.demand import primary_link_loads
from repro.traffic.profiles import LoadProfile, generate_nonstationary_trace


def run(config):
    network = nsfnet_backbone()
    table = build_path_table(network)
    nominal = nsfnet_nominal_traffic()
    profile = LoadProfile.step(at=30.0, before=0.8, after=1.3)
    pre_surge_loads = primary_link_loads(network, table, nominal) * 0.8
    static = ControlledAlternateRouting(network, table, pre_surge_loads)
    single = SinglePathRouting(network, table)

    duration = config.warmup + max(60.0, config.measured_duration)
    results = {"single-path": [], "static(stale)": [], "adaptive": []}
    final_levels = None
    for seed in config.seeds:
        trace = generate_nonstationary_trace(nominal, profile, duration, seed)
        results["single-path"].append(
            simulate(network, single, trace, config.warmup).network_blocking
        )
        results["static(stale)"].append(
            simulate(network, static, trace, config.warmup).network_blocking
        )
        adaptive_result, updates = simulate_adaptive(
            network,
            table,
            trace,
            warmup=config.warmup,
            update_interval=5.0,
            initial_loads=pre_surge_loads,
        )
        results["adaptive"].append(adaptive_result.network_blocking)
        final_levels = updates[-1].protection_levels
    means = {name: float(np.mean(vals)) for name, vals in results.items()}
    return means, static.protection_levels, final_levels


def test_adaptive_protection_tracks_surge(benchmark, bench_config):
    means, stale_levels, adapted_levels = benchmark.pedantic(
        run, args=(bench_config,), rounds=1, iterations=1
    )
    print()
    print("Load surge 0.8x -> 1.3x nominal at t=30, NSFNet (regenerated):")
    print(format_table(["policy", "blocking"], [[k, v] for k, v in means.items()]))
    print(
        f"protection levels: stale sum {int(stale_levels.sum())}, "
        f"adapted sum {int(adapted_levels.sum())}"
    )

    # The guarantee holds for both controlled variants.
    assert means["static(stale)"] <= means["single-path"] + 0.01
    assert means["adaptive"] <= means["single-path"] + 0.01
    # Adaptation is at least as good as running on the stale estimate.
    assert means["adaptive"] <= means["static(stale)"] + 0.01
    # And it genuinely hardened the levels after the surge.
    assert adapted_levels.sum() > stale_levels.sum()
