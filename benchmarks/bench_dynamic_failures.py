"""EXP-DYNFAIL — dynamic failures: mid-run link loss, drops, and recovery.

The dynamic extension of the paper's Section 4.2.2 failure study: instead
of removing link 2<->3 before the run, the link fails *during* the run and
is repaired later, severing in-progress calls and leaving each policy's
tables stale for a reconvergence delay.  The paper's claim — that the
relative position of the three schemes' curves is maintained under failure
— should survive churn too, now measured on availability (blocking *and*
drops) with the recovery transient reported.
Implementation: :func:`repro.experiments.robustness.dynamic_failure_comparison`.
"""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.experiments.robustness import dynamic_failure_comparison


def test_dynamic_failures_preserve_ordering(benchmark, bench_config):
    reports = benchmark.pedantic(
        dynamic_failure_comparison,
        kwargs={"config": bench_config},
        rounds=1,
        iterations=1,
    )
    rows = [
        [name, r.blocking.mean, r.drop_rate.mean, r.availability.mean,
         r.time_to_recover.mean]
        for name, r in reports.items()
    ]
    print()
    print("Dynamic failure of 2<->3 at load 12 (regenerated):")
    print(format_table(
        ["policy", "blocking", "dropped", "availability", "t-recover"], rows
    ))

    single = reports["single-path"]
    uncontrolled = reports["uncontrolled"]
    controlled = reports["controlled"]
    # Every scheme loses calls when the link dies under load...
    assert single.drop_rate.mean > 0
    assert controlled.drop_rate.mean > 0
    # ...and all of them eventually recover within the horizon.
    for report in reports.values():
        assert report.time_to_recover.mean < bench_config.duration
    # The paper's ordering is maintained under dynamic churn: controlled
    # alternate routing is never worse than single-path, and uncontrolled
    # is at or past its crossover at this above-nominal load — now stated
    # on availability, which charges drops as well as blocking.
    assert controlled.availability.mean >= single.availability.mean - 0.01
    assert controlled.availability.mean >= uncontrolled.availability.mean - 0.01
    assert controlled.blocking.mean <= single.blocking.mean + 0.01
    assert uncontrolled.blocking.mean >= controlled.blocking.mean - 0.01
