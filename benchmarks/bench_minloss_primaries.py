"""EXP-MINLOSS — Section 4.2.2: min-link-loss primary paths.

The paper's findings: choosing primaries to minimize expected link loss
(bifurcated flows, convex objective) beats min-hop primaries *without*
alternate routing, but once controlled alternate routing is added the two
primary rules perform almost coincidentally — the scheme is insensitive to
the base policy.  Implementation:
:func:`repro.experiments.prose.minloss_comparison`.
"""

from __future__ import annotations

from repro.experiments.prose import minloss_comparison
from repro.experiments.report import format_table


def test_minloss_primaries(benchmark, bench_config):
    stats, solution = benchmark.pedantic(
        minloss_comparison, args=(bench_config,), rounds=1, iterations=1
    )
    rows = [[name, stat.mean, stat.half_width] for name, stat in stats.items()]
    print()
    print("Min-link-loss vs min-hop primaries, NSFNet load 11 (regenerated):")
    print(format_table(["policy", "blocking", "ci"], rows))
    print(
        f"flow-deviation: objective {solution.objective:.2f}, "
        f"gap {solution.optimality_gap:.3f}, "
        f"{solution.bifurcated_pairs()} bifurcated pairs"
    )

    # Without alternates, the optimized primaries win.
    assert stats["single/min-loss"].mean < stats["single/min-hop"].mean
    # With controlled alternate routing the two base rules nearly coincide.
    gap = abs(stats["controlled/min-hop"].mean - stats["controlled/min-loss"].mean)
    assert gap < 0.02
    # And both controlled variants beat their single-path counterparts.
    assert stats["controlled/min-hop"].mean <= stats["single/min-hop"].mean + 0.01
    assert stats["controlled/min-loss"].mean <= stats["single/min-loss"].mean + 0.01
    # The optimizer genuinely bifurcated some pairs.
    assert solution.bifurcated_pairs() > 0
