"""EXP-H6 — Section 4.2.2: limiting alternate paths to H = 6 hops.

The paper reports that halving the hop limit (11 -> 6) barely shrinks the
pool of useful alternates on the sparse NSFNet, lowers the required
protection levels, and yields a small *improvement* for controlled alternate
routing with little change for the other schemes.

Reproduction note: with the hop limit read as an absolute path length, the
Table-1 topology gives an H=6 census of ~3.3 alternates per pair (max 6),
not the paper's "about 7 / max 13" — those printed numbers match an H=9
enumeration of the same topology instead.  The qualitative claims (good
short alternates survive, r's shrink, controlled improves slightly) hold
regardless; see EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from repro.core.protection import min_protection_level
from repro.experiments.figures import nsfnet_sweep
from repro.experiments.report import format_sweep
from repro.topology.nsfnet import nsfnet_backbone
from repro.topology.paths import alternate_path_census, build_path_table
from repro.traffic.calibration import nsfnet_nominal_traffic
from repro.traffic.demand import primary_link_loads


def test_h6_census_and_protection_levels(benchmark):
    def build():
        network = nsfnet_backbone()
        return (
            build_path_table(network, max_hops=6),
            build_path_table(network, max_hops=11),
            network,
        )

    table6, table11, network = benchmark(build)
    census6 = alternate_path_census(table6)
    census11 = alternate_path_census(table11)
    print()
    print(f"H=11 census: {census11}")
    print(f"H=6  census: {census6}")

    # The paper's H=11 census reproduces exactly.
    assert census11["max"] == 15.0
    assert census11["min"] == 5.0
    assert 8.0 <= census11["mean"] <= 9.5
    # H=6 keeps every pair connected to at least one alternate... except
    # pairs whose min-hop distance is already near the limit.
    assert census6["pairs"] == 132.0
    assert census6["mean"] >= 3.0

    # Protection levels shrink when H does, freeing alternate capacity.
    loads = primary_link_loads(network, table11, nsfnet_nominal_traffic())
    r6 = np.array([min_protection_level(l, 100, 6) for l in loads])
    r11 = np.array([min_protection_level(l, 100, 11) for l in loads])
    assert (r6 <= r11).all()
    assert r6.sum() < r11.sum()


def test_h6_blocking_comparison(benchmark, bench_config):
    def run():
        return (
            nsfnet_sweep(load_values=(9.0, 10.0, 11.0), max_hops=6, config=bench_config),
            nsfnet_sweep(load_values=(9.0, 10.0, 11.0), max_hops=None, config=bench_config),
        )

    points6, points11 = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_sweep(points6, "NSFNet H=6 (regenerated)"))
    print(format_sweep(points11, "NSFNet H=11 (regenerated)"))

    for p6, p11 in zip(points6, points11):
        # Controlled with H=6 at least matches H=11 (small improvement in
        # the paper; tolerate statistical noise).
        assert p6.blocking["controlled"].mean <= p11.blocking["controlled"].mean + 0.01
        # Single-path routing is identical by construction (no alternates).
        assert p6.blocking["single-path"].values == p11.blocking["single-path"].values
