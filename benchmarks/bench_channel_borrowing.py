"""EXP-CELL — Section 3.2: channel borrowing protected with r(H = 3).

The paper's claim: with each cell's protection level chosen for H = 3 (the
co-cell set size), channel borrowing is *guaranteed* to improve on plain
blocking, and since r(H=3) is small at C ~ 50 the protected scheme should be
close to optimal; free borrowing, like uncontrolled alternate routing, can
do worse than no borrowing under uniform overload.
"""

from __future__ import annotations

import numpy as np

from repro.cellular.channel_borrowing import (
    FREE_BORROWING,
    NO_BORROWING,
    PROTECTED_BORROWING,
    HexCellGrid,
    protection_levels_for_grid,
    simulate_cellular,
)
from repro.experiments.report import format_table


def run_grid(load_per_cell: float, seeds, duration: float):
    grid = HexCellGrid(5, 5, 50)
    loads = np.full(grid.num_cells, load_per_cell)
    # A couple of hot cells make borrowing genuinely useful.
    loads[7] *= 1.5
    loads[17] *= 1.4
    outcome = {}
    for policy in (NO_BORROWING, FREE_BORROWING, PROTECTED_BORROWING):
        blockings = [
            simulate_cellular(grid, loads, policy, duration=duration, seed=seed).blocking
            for seed in seeds
        ]
        outcome[policy.name] = float(np.mean(blockings))
    return grid, loads, outcome


def test_channel_borrowing_sweep(benchmark, bench_config):
    def run_all():
        return {
            load: run_grid(load, bench_config.seeds, bench_config.duration)[2]
            for load in (35.0, 45.0, 55.0)
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [load, o["no-borrowing"], o["free-borrowing"], o["protected-borrowing"]]
        for load, o in results.items()
    ]
    print()
    print("Channel borrowing, 5x5 hex grid, C=50 (regenerated):")
    print(format_table(["erlangs/cell", "no-borrow", "free", "protected(H=3)"], rows))

    for load, outcome in results.items():
        # The Theorem-1 guarantee: protected borrowing never worse than no
        # borrowing (statistical tolerance).
        assert outcome["protected-borrowing"] <= outcome["no-borrowing"] + 0.01
    # At moderate load borrowing clearly helps.
    assert results[45.0]["protected-borrowing"] < results[45.0]["no-borrowing"]
    # r(H=3) is small at C ~ 50 and moderate load, as the paper expects.
    grid = HexCellGrid(5, 5, 50)
    levels = protection_levels_for_grid(grid, np.full(grid.num_cells, 35.0))
    assert levels.max() <= 6
