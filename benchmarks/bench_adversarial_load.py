"""EXP-ADV — adversarial & time-varying demand against the stationary bound.

Theorem 1 and the Erlang lower bound are stationary statements; this
benchmark regenerates the EXP-ADV study to measure how far time-varying
and adversarial demand push controlled alternate routing away from that
reference line, and how much of the gap an EWMA threshold-recompute loop
claws back:

* **workload sweep** — stationary control, diurnal, flash-crowd, and the
  seeded adversarial injector, each with static (paper deployment) and
  adaptive (recompute every window) Equation-15 thresholds, compared
  against the Theorem-1 bound on the *time-averaged* matrix;
* **serve-plane tracking** — recompute counts and time-to-reconverge with
  the online recompute on versus off, on the same replayable trace;
* **correlated failure** — the flash-crowd surge replayed through a
  3-shard cluster that loses one shard mid-surge, separating calls the
  *network* refused (blocked) from calls the *infrastructure* lost
  (dropped).

Results land in ``BENCH_adversarial_load.json`` at the repo root.
Fidelity knobs shared with the other benchmarks: ``REPRO_BENCH_SEEDS``,
``REPRO_BENCH_DURATION``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.adversarial import adversarial_load_study
from repro.experiments.report import format_table

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUTPUT = _REPO_ROOT / "BENCH_adversarial_load.json"


def _surge_with_shard_kill(config) -> dict:
    from repro.api import Scenario
    from repro.serve.loadgen import measure_surge_with_shard_kill

    scenario = Scenario(
        topology="nsfnet", traffic="nominal", policy="controlled",
        max_hops=6, load_scale=1.1, workload="flash-crowd",
    )
    trace = scenario.make_trace(config.duration, config.seeds[0])
    policy = scenario.build_policy("controlled")
    # Kill the shard roughly halfway through its command stream: late
    # enough to clear the warmup window (whose decisions are excluded from
    # the loss accounting), early enough to land inside the flash crowd.
    return measure_surge_with_shard_kill(
        scenario.network, policy, trace,
        kill_after_ops=max(800, int(len(trace.times) * 0.5)),
        warmup=config.warmup,
    )


def test_adversarial_load(bench_config):
    study = adversarial_load_study(config=bench_config)
    surge = _surge_with_shard_kill(bench_config)

    rows = []
    for spec, doc in study["workloads"].items():
        on = doc["serve"]["recompute_on"]
        rows.append([
            spec,
            doc["static_blocking"]["mean"],
            doc["adaptive_blocking"]["mean"],
            doc["erlang_bound"],
            on["recompute_count"],
            "-" if on["time_to_reconverge"] is None
            else f"{on['time_to_reconverge']:.1f}",
        ])
    print()
    print("EXP-ADV: blocking vs the stationary Theorem-1 bound (regenerated):")
    print(format_table(
        ["workload", "static B", "adaptive B", "bound", "recomputes",
         "t-reconverge"],
        rows,
    ))
    print(
        f"surge + shard kill: blocked {surge['blocked_fraction']:.1%} "
        f"(admission) vs dropped {surge['dropped_fraction']:.1%} "
        f"(infrastructure), restarts {surge['restarts']}"
    )

    workloads = study["workloads"]
    stationary = workloads["stationary"]
    for spec, doc in workloads.items():
        # The Erlang bound on the time-averaged matrix stays a lower bound
        # for every workload — mass conservation makes the adversary face
        # the same reference line as the stationary control.
        assert doc["static_blocking"]["mean"] >= doc["erlang_bound"] - 0.01, (
            f"{spec}: measured blocking fell below the Erlang bound"
        )
        on = doc["serve"]["recompute_on"]
        off = doc["serve"]["recompute_off"]
        assert on["recompute_count"] > 0, f"{spec}: recompute loop never fired"
        assert off["recompute_count"] is None or off["recompute_count"] == 0
        if spec != "stationary":
            # Nonstationary demand must be visible to the recompute loop:
            # at least one refresh lands at or after the regime shift.
            assert on["time_to_reconverge"] is not None
    # Time-varying concentration hurts: both headline shapes block more
    # than the stationary control under the same mean offered load.
    for spec in ("flash-crowd", "adversarial:0"):
        assert (
            workloads[spec]["static_blocking"]["mean"]
            >= stationary["static_blocking"]["mean"] - 0.02
        ), f"{spec}: surge workload blocked less than the stationary control"

    # The chaos run must exhibit both loss modes and restart the shard.
    assert surge["blocked"] > 0, "shard-kill surge: admission never blocked"
    assert surge["dropped"] > 0, "shard-kill surge: no infrastructure drops"
    assert surge["restarts"].get(surge["kill_shard"], 0) >= 1, (
        "killed shard was never restarted"
    )

    document = {
        "schema": "repro-bench-adversarial-load-v1",
        "fidelity": {
            "seeds": len(bench_config.seeds),
            "measured_duration": bench_config.measured_duration,
        },
        "study": study,
        "surge_with_shard_kill": surge,
    }
    _OUTPUT.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {_OUTPUT}")
