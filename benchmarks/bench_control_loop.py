"""EXP-CTL — the online protection-level optimizer, measured end to end.

EXP-ADV left a quantified wound: under the seeded adversarial workload the
static Equation-15 deployment blocks ~1.65x the stationary control, and the
naive EWMA recompute makes it *worse*.  This benchmark regenerates the
EXP-CTL study to certify the fix (:mod:`repro.control`):

* **steady-state blocking** — static vs EWMA-recompute vs the online
  controller vs the offline-optimal-in-hindsight reference, per workload
  on common random numbers; the online arm must strictly beat static on
  the adversarial workload and close a measurable fraction of the
  static-to-stationary gap;
* **safety** — every proposal crosses the Theorem-1
  :class:`~repro.control.controllers.SafetyClamp`; the run must record
  zero clamp violations (the guarantee is never traded for throughput);
* **swap overhead** — hot swaps are atomic between micro-batches; their
  measured latency must stay in the sub-millisecond range;
* **tracking** — swap counts and time-to-reconverge from the serve-plane
  regime-shift report, plus bit-identity of the EWMA arm's batch-kernel
  replay against the scalar loop (the kernel's ``threshold_schedule``
  support is load-bearing here).

Results land in ``BENCH_control_loop.json`` at the repo root.  Fidelity
knobs shared with the other benchmarks: ``REPRO_BENCH_SEEDS``,
``REPRO_BENCH_DURATION``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.control import control_loop_study
from repro.experiments.report import format_table

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUTPUT = _REPO_ROOT / "BENCH_control_loop.json"

#: Hot swaps happen between engine micro-batches; anything slower than
#: this bound would be visible in decision latency tails.
_SWAP_SECONDS_BOUND = 0.005


def test_control_loop(bench_config):
    study = control_loop_study(config=bench_config)

    rows = []
    for spec, doc in study["workloads"].items():
        rows.append([
            spec,
            doc["static_blocking"]["mean"],
            doc["ewma_blocking"]["mean"],
            doc["online_blocking"]["mean"],
            doc["hindsight_blocking"]["mean"],
            "-" if doc["gap_closed"] is None else f"{doc['gap_closed']:.0%}",
            doc["serve"]["swap_events"],
            "-" if doc["serve"]["time_to_reconverge"] is None
            else f"{doc['serve']['time_to_reconverge']:.1f}",
        ])
    print()
    print("EXP-CTL: online protection-level control (regenerated):")
    print(format_table(
        ["workload", "static B", "ewma B", "online B", "hindsight B",
         "gap closed", "swaps", "t-reconverge"],
        rows,
    ))
    print(
        f"stationary reference: "
        f"{study['stationary_blocking']['mean']:.4f} network blocking"
    )

    workloads = study["workloads"]
    for spec, doc in workloads.items():
        # Safety is non-negotiable: no proposal may cross the Theorem-1
        # floor, whatever the estimator believes about the demand.
        assert doc["clamp_violations"] == 0, (
            f"{spec}: controller violated the Theorem-1 protection floor"
        )
        # The EWMA arm's piecewise-constant schedule replayed through the
        # batch kernel must agree with the scalar loop bit for bit.
        assert doc["ewma_batch_matches_loop"], (
            f"{spec}: batch threshold_schedule replay diverged from the "
            "scalar adaptive loop"
        )
        # The loop must actually run and swap: a controller that never
        # moves the thresholds is indistinguishable from static.
        assert doc["control_steps_per_run"] > 0, f"{spec}: loop never stepped"
        assert doc["serve"]["policy_epoch"] > 0, f"{spec}: no hot swap landed"
        assert doc["serve"]["time_to_reconverge"] is not None
        assert doc["mean_swap_seconds"] < _SWAP_SECONDS_BOUND, (
            f"{spec}: hot swap overhead {doc['mean_swap_seconds']:.4f}s "
            f"exceeds {_SWAP_SECONDS_BOUND}s"
        )

    adversarial = workloads["adversarial:0"]
    # The acceptance bar: online optimization strictly beats the static
    # offline r^k where EXP-ADV showed adaptation losing ground.
    assert (
        adversarial["online_blocking"]["mean"]
        < adversarial["static_blocking"]["mean"]
    ), "adversarial: online controller failed to beat static thresholds"
    assert adversarial["gap_closed"] is not None and adversarial["gap_closed"] > 0, (
        "adversarial: no measurable fraction of the static-to-stationary "
        "gap was closed"
    )
    # ...and it must not lose to the EWMA tracker it replaces.
    assert (
        adversarial["online_blocking"]["mean"]
        <= adversarial["ewma_blocking"]["mean"]
    ), "adversarial: online controller lost to the EWMA recompute"

    document = {
        "schema": "repro-bench-control-loop-v1",
        "fidelity": {
            "seeds": len(bench_config.seeds),
            "measured_duration": bench_config.measured_duration,
        },
        "study": study,
    }
    _OUTPUT.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {_OUTPUT}")
