"""ABL-R — ablation: sensitivity of blocking to the protection level.

The paper leans on the robustness of state protection (citing Key [21]
Section 2.2): a level optimized for one loading works well under variations.
We perturb every link's Theorem-1 level by a common offset and check the
blocking response is flat near the chosen value, while removing protection
entirely (large negative offset) hurts at above-nominal load.
"""

from __future__ import annotations

from repro.experiments.ablations import protection_sensitivity
from repro.experiments.report import format_table
from repro.topology.nsfnet import nsfnet_backbone
from repro.topology.paths import build_path_table
from repro.traffic.calibration import nsfnet_nominal_traffic

OFFSETS = (-100, -4, -2, 0, 2, 4, 8)


def test_r_sensitivity(benchmark, bench_config):
    network = nsfnet_backbone()
    table = build_path_table(network)
    traffic = nsfnet_nominal_traffic().scaled(1.2)

    outcome = benchmark.pedantic(
        protection_sensitivity,
        args=(network, table, traffic),
        kwargs={"offsets": OFFSETS, "config": bench_config},
        rounds=1,
        iterations=1,
    )
    rows = [[offset, stat.mean, stat.half_width] for offset, stat in outcome.items()]
    print()
    print("Protection-level sensitivity, NSFNet load 12 (regenerated):")
    print(format_table(["r offset", "blocking", "ci"], rows))

    base = outcome[0].mean
    # Robustness: a few circuits either way moves blocking only marginally.
    for offset in (-2, 2, 4):
        assert abs(outcome[offset].mean - base) < 0.02
    # Stripping protection entirely (offset -100 clips every r to 0) turns
    # the scheme into uncontrolled alternate routing, which is worse at this
    # above-nominal load.
    assert outcome[-100].mean > base - 0.005
