"""EXT-BIST — the bistability that motivates the paper's control (Section 1).

Mean-field analysis of the symmetric fully-connected network with two-hop
alternates (after Akinpelu [1] and Gibbens-Hunt-Kelly [10], the works the
paper cites for "uncontrolled alternate routing can actually do much worse
... beyond a certain critical load"): without reservation the fixed-point
equations are bistable just below capacity — the avalanche has somewhere to
fall to — while a modest trunk-reservation level removes the high-blocking
branch entirely.
"""

from __future__ import annotations

from repro.analysis.bistability import find_fixed_points
from repro.core.protection import min_protection_level
from repro.experiments.report import format_table

CAPACITY = 120
ATTEMPTS = 5
LOADS = (90.0, 96.0, 100.0, 104.0, 108.0, 112.0)


def sweep():
    rows = []
    for load in LOADS:
        unprotected = find_fixed_points(load, CAPACITY, 0, max_attempts=ATTEMPTS)
        # Protect with the paper's Equation-15 level for two-hop alternates.
        level = min_protection_level(load, CAPACITY, 2)
        protected = find_fixed_points(load, CAPACITY, level, max_attempts=ATTEMPTS)
        rows.append((load, level, unprotected, protected))
    return rows


def test_reservation_removes_bistable_branch(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = []
    for load, level, unprotected, protected in rows:
        table.append(
            [
                load,
                len(unprotected),
                unprotected[0].blocking,
                unprotected[-1].blocking,
                level,
                len(protected),
                protected[-1].blocking,
            ]
        )
    print()
    print("Symmetric mean-field fixed points, C=120, 5 alternate attempts:")
    print(
        format_table(
            ["load", "#fp(r=0)", "low B", "high B", "r(Eq15)", "#fp(r)", "B(r)"],
            table,
        )
    )

    by_load = {row[0]: row for row in rows}
    # Bistability appears below capacity without reservation...
    assert any(len(unprotected) > 1 for __, __, unprotected, __ in rows)
    bistable = [load for load, __, unprotected, ___ in rows if len(unprotected) > 1]
    assert all(load <= CAPACITY for load in bistable)
    # ...and the Equation-15 reservation always leaves a unique fixed point.
    for load, level, unprotected, protected in rows:
        assert len(protected) == 1
        # The protected operating point never exceeds the worst unprotected
        # branch and beats it wherever bistability exists.
        assert protected[-1].blocking <= unprotected[-1].blocking + 1e-9
        if len(unprotected) > 1:
            assert protected[-1].blocking < unprotected[-1].blocking / 2
