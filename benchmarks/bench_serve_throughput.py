"""SERVE — decision throughput and overload behaviour of the serving plane.

Two workloads over the same NSFNet nominal-traffic trace:

* **Serial vs batched dispatch** — the identical request stream (arrivals
  and releases in simulator event order) decided one request per
  :meth:`RequestEngine.decide` call vs micro-batches through
  :meth:`decide_batch`.  The decision lists must be identical — batching
  only amortizes per-request overhead (state snapshot, telemetry fold,
  latency stamping) — and the batched rate must clear the 3x bar.
* **2x overload** — the token-bucket rate is set to half the offered
  request rate, so the service *must* shed roughly half the queries to
  survive.  The run must stay deterministic (virtual-time bucket), shed a
  substantial fraction, keep the decision-latency p99 bounded, and record
  explicit mode transitions (the degrade/shed/recover trajectory).

Results land in ``BENCH_serve_throughput.json`` at the repo root.
Fidelity knobs shared with the other benchmarks: ``REPRO_BENCH_SEEDS``
(unused here), ``REPRO_BENCH_DURATION``, and ``REPRO_BENCH_SPEEDUP_SCALE``
for CI's timing-noise-dominated smoke runs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.serve.loadgen import measure_overload, measure_throughput
from repro.sim.trace import generate_trace
from repro.routing.alternate import ControlledAlternateRouting
from repro.topology.nsfnet import nsfnet_backbone
from repro.topology.paths import build_path_table
from repro.traffic.calibration import nsfnet_nominal_traffic
from repro.traffic.demand import primary_link_loads

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUTPUT = _REPO_ROOT / "BENCH_serve_throughput.json"

_SPEEDUP_SCALE = float(os.environ.get("REPRO_BENCH_SPEEDUP_SCALE", "1.0"))
_BATCH_SPEEDUP_BAR = 3.0 * _SPEEDUP_SCALE
#: Per-decision p99 under 2x overload; generous because tiny CI runs put
#: whole-batch overhead on few decisions, yet tight enough to prove the
#: service answers instead of queueing (an unbounded queue shows up as
#: milliseconds-and-growing here).
_OVERLOAD_P99_BAR_SECONDS = 0.005


def test_serve_throughput(bench_config):
    network = nsfnet_backbone()
    table = build_path_table(network)
    traffic = nsfnet_nominal_traffic()
    loads = primary_link_loads(network, table, traffic)
    policy = ControlledAlternateRouting(network, table, loads)
    trace = generate_trace(
        traffic, bench_config.measured_duration + 10.0, seed=42
    )

    throughput = measure_throughput(network, policy, trace)
    assert throughput["speedup"] >= _BATCH_SPEEDUP_BAR, (
        f"batched dispatch {throughput['speedup']:.2f}x below the "
        f"{_BATCH_SPEEDUP_BAR:g}x bar"
    )

    overload = measure_overload(network, policy, trace, overload_factor=2.0)
    assert overload["shed"] > 0, "2x overload shed nothing"
    assert 0.2 <= overload["shed_fraction"] <= 0.8, (
        f"2x overload shed {overload['shed_fraction']:.1%} of queries; "
        "expected roughly half"
    )
    assert overload["mode_transitions"] >= 2, (
        "overload control never cycled through its modes"
    )
    assert overload["decision_p99_seconds"] <= _OVERLOAD_P99_BAR_SECONDS, (
        f"decision p99 {overload['decision_p99_seconds'] * 1e6:.0f}us under "
        "overload: the service is queueing instead of shedding"
    )

    document = {
        "schema": "repro-bench-serve-throughput-v1",
        "fidelity": {
            "measured_duration": bench_config.measured_duration,
            "speedup_scale": _SPEEDUP_SCALE,
        },
        "workload": (
            "NSFNet nominal traffic, controlled alternate routing, "
            "simulator-ordered admit/release request stream"
        ),
        "throughput": throughput,
        "overload": overload,
    }
    _OUTPUT.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print()
    print(
        f"serial  : {throughput['serial_decisions_per_sec']:,.0f} decisions/sec"
    )
    print(
        f"batched : {throughput['batched_decisions_per_sec']:,.0f} decisions/sec"
        f"  ({throughput['speedup']:.2f}x, identical decisions)"
    )
    print(
        f"overload: shed {overload['shed_fraction']:.1%}, "
        f"{overload['mode_transitions']} transitions, "
        f"p99 {overload['decision_p99_seconds'] * 1e6:.1f}us"
    )
    print(f"wrote {_OUTPUT}")
