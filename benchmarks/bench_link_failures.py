"""EXP-FAIL — Section 4.2.2: link failures 2<->3 and 7<->9.

The paper disables each duplex link in turn and observes that blocking rises
but the relative position of the three schemes' curves is maintained.
Implementation: :func:`repro.experiments.prose.link_failure_comparison`.
"""

from __future__ import annotations

from repro.experiments.prose import link_failure_comparison
from repro.experiments.report import format_table


def test_link_failures_preserve_ordering(benchmark, bench_config):
    outcome = benchmark.pedantic(
        link_failure_comparison, args=(bench_config,), rounds=1, iterations=1
    )
    rows = [
        [name, stats["single-path"].mean, stats["uncontrolled"].mean, stats["controlled"].mean]
        for name, stats in outcome.items()
    ]
    print()
    print("Link failures at load 12 (regenerated):")
    print(format_table(["scenario", "single-path", "uncontrolled", "controlled"], rows))

    intact = outcome["intact"]
    for name in ("fail 2<->3", "fail 7<->9"):
        stats = outcome[name]
        # Blocking in general is higher under failure...
        assert stats["single-path"].mean >= intact["single-path"].mean - 0.01
        # ...and the relative position of the curves is maintained:
        # controlled still never worse than single-path, and uncontrolled
        # still at or past its crossover at this above-nominal load.
        assert stats["controlled"].mean <= stats["single-path"].mean + 0.01
        assert stats["uncontrolled"].mean >= stats["controlled"].mean - 0.01
