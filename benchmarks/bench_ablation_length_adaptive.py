"""ABL-LEN — ablation: protection keyed to actual alternate path length.

Section 3.2 hints the global-``H`` levels of Equation 15 "may be more
conservative than they need to be".  Two refinements preserve the Theorem-1
guarantee with tighter budgets:

* per-link ``H^k`` (footnote 5) — each link uses the longest alternate that
  actually traverses it;
* length-adaptive thresholds — admission of an ``h``-hop alternate requires
  each link's bound at ``1/h`` rather than ``1/H``, so short alternates face
  laxer thresholds.

This bench quantifies the refinement gains over the paper's global-``H``
scheme in the crossover region of the quadrangle, where protection decides
everything.
"""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.experiments.runner import compare_policies
from repro.routing.alternate import (
    ControlledAlternateRouting,
    LengthAdaptiveControlledRouting,
    UncontrolledAlternateRouting,
    per_link_max_hops,
)
from repro.routing.single_path import SinglePathRouting
from repro.topology.generators import quadrangle
from repro.topology.paths import build_path_table
from repro.traffic.demand import primary_link_loads
from repro.traffic.generators import uniform_traffic


def run(config):
    network = quadrangle(100)
    table = build_path_table(network)
    outcome = {}
    for per_pair in (85.0, 90.0, 95.0):
        traffic = uniform_traffic(4, per_pair)
        loads = primary_link_loads(network, table, traffic)
        policies = {
            "single-path": SinglePathRouting(network, table),
            "uncontrolled": UncontrolledAlternateRouting(network, table),
            "controlled(H)": ControlledAlternateRouting(network, table, loads),
            "controlled(H^k)": ControlledAlternateRouting(
                network, table, loads, per_link_hops=per_link_max_hops(network, table)
            ),
            "length-adaptive": LengthAdaptiveControlledRouting(network, table, loads),
        }
        outcome[per_pair] = compare_policies(network, policies, traffic, config)
    return outcome


def test_length_adaptive_refinement(benchmark, bench_config):
    outcome = benchmark.pedantic(run, args=(bench_config,), rounds=1, iterations=1)
    rows = [
        [load] + [stats[name].mean for name in
                  ("single-path", "uncontrolled", "controlled(H)", "controlled(H^k)", "length-adaptive")]
        for load, stats in outcome.items()
    ]
    print()
    print("Protection refinements, quadrangle crossover region (regenerated):")
    print(
        format_table(
            ["load", "single", "unctl", "ctl(H)", "ctl(H^k)", "len-adaptive"], rows
        )
    )

    for load, stats in outcome.items():
        # Both refinements keep the guarantee...
        assert stats["controlled(H^k)"].mean <= stats["single-path"].mean + 0.01
        assert stats["length-adaptive"].mean <= stats["single-path"].mean + 0.01
        # ...and the length-adaptive scheme is at least as good as global-H
        # (its thresholds dominate: r(h) <= r(H) for h <= H).
        assert stats["length-adaptive"].mean <= stats["controlled(H)"].mean + 0.005
    # Somewhere in the window the refinement visibly helps.
    gains = [
        stats["controlled(H)"].mean - stats["length-adaptive"].mean
        for stats in outcome.values()
    ]
    assert max(gains) > 0.0
