"""EXT-CONV — the paper's simulation-parameter sufficiency claim.

Section 4: 100 time units per run, 10 seeds, 10-unit warm-up from an idle
network — "these simulation parameters were found to be sufficient".  This
bench reproduces the finding: the warm-up removes the idle-start bias (a
zero warm-up underestimates blocking), extra warm-up beyond ~10 units
changes nothing, and 10 seeds put the confidence half-width well below the
between-policy gaps the paper's figures rely on.
"""

from __future__ import annotations

from repro.experiments.convergence import seed_convergence, warmup_sensitivity
from repro.experiments.report import format_table
from repro.routing.single_path import SinglePathRouting
from repro.topology.generators import quadrangle
from repro.topology.paths import build_path_table
from repro.traffic.generators import uniform_traffic


def run():
    network = quadrangle(100)
    table = build_path_table(network)
    traffic = uniform_traffic(4, 95.0)
    policy = SinglePathRouting(network, table)
    warmups = warmup_sensitivity(
        network, policy, traffic,
        warmups=(0.0, 2.0, 5.0, 10.0, 20.0),
        measured_duration=60.0,
        seeds=range(6),
    )
    seeds = seed_convergence(
        network, policy, traffic,
        seed_counts=(2, 5, 10, 20),
        measured_duration=60.0,
    )
    return warmups, seeds


def test_simulation_parameters_sufficient(benchmark):
    warmups, seeds = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Warm-up sensitivity (quadrangle, 95 E, single-path):")
    print(
        format_table(
            ["warmup", "blocking", "ci"],
            [[w, s.mean, s.half_width] for w, s in warmups.items()],
        )
    )
    print("Replication convergence:")
    print(
        format_table(
            ["seeds", "blocking", "ci half-width"],
            [[n, s.mean, s.half_width] for n, s in seeds.items()],
        )
    )

    # Idle start biases blocking low; the paper's 10 units fix it.
    assert warmups[0.0].mean < warmups[10.0].mean
    # Beyond the transient, more warm-up is a no-op (within noise).
    assert abs(warmups[10.0].mean - warmups[20.0].mean) < 0.02
    # Ten seeds bound the half-width well below the ~0.03-0.1 policy gaps
    # the paper's figures resolve.
    assert seeds[10].half_width < 0.01
    assert seeds[20].half_width <= seeds[5].half_width
