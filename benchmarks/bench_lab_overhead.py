"""LAB-OVERHEAD — cost of lab orchestration over a direct ``run_study``.

The lab runner adds hashing, per-job checkpoint writes, manifest rewrites,
and event emission around the exact same simulation work.  This benchmark
times the paper's nominal NSFNet study three ways:

* **direct** — ``run_study(scenario, config=config)``, no lab;
* **lab cold** — the same call through a fresh content-addressed store
  (every replication simulated and checkpointed);
* **lab warm** — the same call against the populated store (100% cache
  hits, no simulation).

The cold pass must be bit-identical to the direct run and its overhead
must stay under the bar (default 5%; the paper-fidelity number is the
committed ``BENCH_lab_overhead.json``).  Short CI runs amortize the fixed
orchestration cost over far less simulation, so the bar is tunable via
``REPRO_BENCH_LAB_OVERHEAD_PCT``.  Fidelity knobs are shared with the
other benchmarks: ``REPRO_BENCH_SEEDS``, ``REPRO_BENCH_DURATION``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.api import LabConfig, Scenario, run_study

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUTPUT = _REPO_ROOT / "BENCH_lab_overhead.json"

_OVERHEAD_BAR_PCT = float(os.environ.get("REPRO_BENCH_LAB_OVERHEAD_PCT", "5.0"))
_ROUNDS = 3


def test_lab_overhead(bench_config, tmp_path):
    scenario = Scenario()

    # Interleaved best-of-N: alternating direct/lab rounds cancels CPU
    # frequency drift.  Every lab round gets a fresh store so each one
    # pays the full cold-cache cost.
    best_direct = best_cold = float("inf")
    direct = cold = None
    for round_index in range(_ROUNDS):
        start = time.perf_counter()
        direct = run_study(scenario, config=bench_config)
        best_direct = min(best_direct, time.perf_counter() - start)

        store = tmp_path / f"store-{round_index}"
        start = time.perf_counter()
        cold = run_study(scenario, config=bench_config, lab=LabConfig(store=store))
        best_cold = min(best_cold, time.perf_counter() - start)

    assert cold.lab.simulated == len(bench_config.seeds)
    assert cold.stat == direct.stat
    for a, b in zip(direct.outcome.results, cold.outcome.results):
        assert np.array_equal(a.blocked, b.blocked)
        assert np.array_equal(a.offered, b.offered)

    # Warm pass: same study against the last populated store.
    store = tmp_path / f"store-{_ROUNDS - 1}"
    start = time.perf_counter()
    warm = run_study(scenario, config=bench_config, lab=LabConfig(store=store))
    warm_seconds = time.perf_counter() - start
    assert warm.lab.cache_hits == warm.lab.total_jobs
    assert warm.lab.simulated == 0
    assert warm.stat == direct.stat

    overhead_pct = 100.0 * (best_cold - best_direct) / best_direct
    assert overhead_pct <= _OVERHEAD_BAR_PCT, (
        f"lab orchestration overhead {overhead_pct:.1f}% exceeds the "
        f"{_OVERHEAD_BAR_PCT:g}% bar ({best_cold:.3f}s lab vs "
        f"{best_direct:.3f}s direct)"
    )

    document = {
        "schema": "repro-bench-lab-overhead-v1",
        "workload": (
            "repro.api.run_study: NSFNet nominal, controlled policy, "
            f"{len(bench_config.seeds)} seeds x "
            f"{bench_config.measured_duration:g} units"
        ),
        "fidelity": {
            "seeds": len(bench_config.seeds),
            "measured_duration": bench_config.measured_duration,
            "overhead_bar_pct": _OVERHEAD_BAR_PCT,
        },
        "direct_seconds": best_direct,
        "lab_cold_seconds": best_cold,
        "lab_warm_seconds": warm_seconds,
        "overhead_pct": overhead_pct,
        "warm_speedup_vs_direct": best_direct / warm_seconds,
        "bit_identical": True,
    }
    _OUTPUT.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print()
    print(f"direct   : {best_direct:.3f}s")
    print(f"lab cold : {best_cold:.3f}s  (+{overhead_pct:.2f}%)")
    print(f"lab warm : {warm_seconds:.3f}s  "
          f"({best_direct / warm_seconds:.0f}x faster than direct)")
    print(f"wrote {_OUTPUT}")
