"""ABL-EST — ablation: a-priori ``Lambda`` vs online measurement.

The paper assumes each link knows its primary demand exactly and argues
(via state protection's robustness) that estimating it instead would not
change the outcome.  This ablation measures that: protection levels built
from a finite-trace estimate of the primary set-up rate perform at par with
the levels built from the true Equation-1 loads.
"""

from __future__ import annotations

from repro.experiments.ablations import estimator_ablation
from repro.experiments.report import format_table
from repro.topology.nsfnet import nsfnet_backbone
from repro.topology.paths import build_path_table
from repro.traffic.calibration import nsfnet_nominal_traffic


def test_estimated_loads_match_known_loads(benchmark, bench_config):
    network = nsfnet_backbone()
    table = build_path_table(network)
    traffic = nsfnet_nominal_traffic().scaled(1.1)

    outcome = benchmark.pedantic(
        estimator_ablation,
        args=(network, table, traffic),
        kwargs={"config": bench_config, "measurement_duration": 50.0},
        rounds=1,
        iterations=1,
    )
    print()
    print("Known vs estimated primary loads, NSFNet load 11 (regenerated):")
    print(
        format_table(
            ["variant", "blocking", "ci"],
            [
                ["known", outcome["known"].mean, outcome["known"].half_width],
                ["estimated", outcome["estimated"].mean, outcome["estimated"].half_width],
            ],
        )
    )
    print(
        f"max load error {outcome['max_load_error']:.2f} Erlangs, "
        f"max protection-level gap {outcome['max_protection_gap']}"
    )

    # Measurement noise over ~50 time units is a few Erlangs per link...
    assert outcome["max_load_error"] < 15.0
    # ...which, thanks to robustness, barely moves the blocking.
    assert abs(outcome["known"].mean - outcome["estimated"].mean) < 0.02
