"""EXT-LBA — sequential vs least-busy alternate selection.

The Mitra-Gibbens family ([28, 29], Dynamic Alternate Routing [9]) selects
the *least busy* alternate using global state; the paper deliberately keeps
selection state-independent (shortest-first crankback) because timely global
state is impractical on a distributed mesh.  This bench measures what that
architectural choice costs: on the symmetric quadrangle (LBA's design point,
two-hop alternates, identical trunk reservations) the two selection rules
are compared under common random numbers.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import format_table
from repro.experiments.runner import compare_policies
from repro.routing.alternate import ControlledAlternateRouting
from repro.routing.least_busy import LeastBusyAlternateRouting
from repro.routing.single_path import SinglePathRouting
from repro.topology.generators import quadrangle
from repro.topology.paths import build_path_table
from repro.traffic.demand import primary_link_loads
from repro.traffic.generators import uniform_traffic


def run(config):
    network = quadrangle(100)
    table = build_path_table(network, max_hops=2)
    outcome = {}
    for per_pair in (85.0, 90.0, 95.0):
        traffic = uniform_traffic(4, per_pair)
        loads = primary_link_loads(network, table, traffic)
        policies = {
            "single-path": SinglePathRouting(network, table),
            "controlled(seq)": ControlledAlternateRouting(network, table, loads),
            "least-busy": LeastBusyAlternateRouting(network, table, loads),
        }
        outcome[per_pair] = compare_policies(network, policies, traffic, config)
    return outcome


def test_sequential_vs_least_busy(benchmark, bench_config):
    outcome = benchmark.pedantic(run, args=(bench_config,), rounds=1, iterations=1)
    rows = [
        [load, stats["single-path"].mean, stats["controlled(seq)"].mean,
         stats["least-busy"].mean]
        for load, stats in outcome.items()
    ]
    print()
    print("Alternate selection rules, quadrangle H=2 (regenerated):")
    print(format_table(["load", "single-path", "sequential", "least-busy"], rows))

    for load, stats in outcome.items():
        # Both respect the guarantee.
        assert stats["controlled(seq)"].mean <= stats["single-path"].mean + 0.01
        assert stats["least-busy"].mean <= stats["single-path"].mean + 0.01
        # The globally informed selection buys little on the symmetric mesh:
        # the paper's state-independent order is within noise of LBA.
        assert abs(stats["least-busy"].mean - stats["controlled(seq)"].mean) < 0.01
