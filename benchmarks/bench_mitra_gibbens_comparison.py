"""EXP-MG — Section 3.2: comparison with Mitra & Gibbens' optimal r (C = 120).

Mitra & Gibbens [28] compute optimal trunk-reservation parameters for a
symmetric fully-connected network with two-hop alternates (H = 2) and
capacity 120.  The paper reports that its Equation-15 levels differ from
their optima by at most two in the crucial moderately-high-load range
``Lambda in [110, 120]``, and that below that range the r values are small
enough to barely influence the routing dynamics.
"""

from __future__ import annotations

from repro.core.protection import figure2_curve, min_protection_level
from repro.experiments.report import format_table


def test_mitra_gibbens_regime(benchmark):
    loads, levels = benchmark.pedantic(
        figure2_curve,
        kwargs={"capacity": 120, "max_hops": 2, "loads": [float(l) for l in range(100, 121)]},
        rounds=1,
        iterations=1,
    )
    rows = [[int(load), int(level)] for load, level in zip(loads, levels)]
    print()
    print("Equation-15 protection levels, C=120, H=2 (regenerated):")
    print(format_table(["Lambda", "r"], rows))

    critical = {int(load): int(level) for load, level in zip(loads, levels)}
    # In the crucial range the levels are modest single/low-double digits —
    # the regime where Mitra-Gibbens' optima live (their published optima
    # for a handful of alternates are within ~2 of these).
    for load in range(110, 121):
        assert 5 <= critical[load] <= 30
    # Levels rise smoothly through the critical range.
    values = [critical[load] for load in range(110, 121)]
    assert all(b >= a for a, b in zip(values, values[1:]))
    assert values[-1] - values[0] <= 15
    # Below the range, r is small enough to barely constrain routing.
    assert min_protection_level(90.0, 120, 2) <= 3
