"""EXP-OK — Section 4.2: the Ott-Krishnan shadow-price comparator on NSFNet.

The paper: "if the state-dependent scheme of Ott and Krishnan's [34] were to
be used the performance is poor", blamed on the separability approximation
swinging wildly in sparse meshes.  We run it with unreduced primary load
intensities, exactly as the paper did, and check it trails the controlled
scheme around and above the nominal load.
"""

from __future__ import annotations

from repro.experiments.figures import nsfnet_sweep
from repro.experiments.report import format_sweep


def test_ott_krishnan_underperforms_on_sparse_mesh(benchmark, bench_config):
    points = benchmark.pedantic(
        nsfnet_sweep,
        kwargs={
            "load_values": (10.0, 12.0),
            "config": bench_config,
            "include_ott_krishnan": True,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(format_sweep(points, "NSFNet with Ott-Krishnan comparator (regenerated):"))

    for point in points:
        ok = point.blocking["ott-krishnan"].mean
        controlled = point.blocking["controlled"].mean
        # Poor performance relative to the controlled scheme.
        assert ok > controlled - 0.005
    # At the higher load it is clearly worse than controlled.
    high = points[-1].blocking
    assert high["ott-krishnan"].mean > high["controlled"].mean
