"""PERF-CORE — timing trajectory for the vectorized analysis/simulation core.

Three workloads, each timed against the retained unvectorized reference
path (``backend="reference"`` for the simulator, ``reference=True`` for the
analysis kernels) and checked for agreement before any speedup is reported:

* **Erlang fixed point, NSFNet sweep** — the reduced-load approximation
  over a grid of load scales, cold caches.  Analysis agreement is numeric
  (~1e-12 relative; the batch Erlang kernel changes float accumulation
  order), the speedup bar is 3x.
* **Simulator throughput** — calls/sec through the specialized hot loop vs
  the general loop, same trace.  Blocking statistics must be bit-identical
  (integer counters, identical routing decisions); the speedup bar is 1.5x.
* **Multi-seed batch** — the replication protocol through the ``repro.api``
  façade, reported for trajectory only (no reference bar).

Results land in ``BENCH_perf_core.json`` at the repo root.  Fidelity knobs
(shared with the other benchmarks): ``REPRO_BENCH_SEEDS``,
``REPRO_BENCH_DURATION``; CI's reduced-fidelity smoke run scales the
speedup bars down with ``REPRO_BENCH_SPEEDUP_SCALE`` because tiny runs are
timing-noise-dominated.

Timing uses interleaved best-of-N: alternating reference/fast rounds and
taking each side's minimum cancels CPU frequency drift that sequential
timing folds into whichever side runs second.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis import fixed_point
from repro.analysis.fixed_point import erlang_fixed_point
from repro.api import Scenario, run_study
from repro.core.erlang import shared_erlang_table
from repro.routing.alternate import ControlledAlternateRouting
from repro.sim.simulator import simulate
from repro.sim.trace import generate_trace
from repro.topology.nsfnet import nsfnet_backbone
from repro.topology.paths import build_path_table
from repro.traffic.calibration import nsfnet_nominal_traffic
from repro.traffic.demand import primary_link_loads

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUTPUT = _REPO_ROOT / "BENCH_perf_core.json"

_SPEEDUP_SCALE = float(os.environ.get("REPRO_BENCH_SPEEDUP_SCALE", "1.0"))
_FP_SPEEDUP_BAR = 3.0 * _SPEEDUP_SCALE
_SIM_SPEEDUP_BAR = 1.5 * _SPEEDUP_SCALE


def _clear_analysis_caches() -> None:
    shared_erlang_table.clear()
    fixed_point._FLATTEN_CACHE.clear()


def _interleaved_best(funcs: dict[str, callable], rounds: int) -> dict[str, float]:
    """Best-of-``rounds`` wall time per labelled callable, interleaved."""
    best = {name: float("inf") for name in funcs}
    for _ in range(rounds):
        for name, func in funcs.items():
            start = time.perf_counter()
            func()
            best[name] = min(best[name], time.perf_counter() - start)
    return best


def _fixed_point_bench() -> dict:
    network = nsfnet_backbone()
    table = build_path_table(network)
    traffic = nsfnet_nominal_traffic()
    scales = np.linspace(0.5, 1.5, 20)

    def sweep(reference: bool) -> list[float]:
        _clear_analysis_caches()
        return [
            erlang_fixed_point(
                network, table, traffic.scaled(float(s)), reference=reference
            ).network_blocking
            for s in scales
        ]

    fast = sweep(reference=False)
    ref = sweep(reference=True)
    worst = max(
        abs(f - r) / max(abs(r), 1e-30) for f, r in zip(fast, ref)
    )
    assert worst < 1e-9, f"fixed-point sweep diverged from reference: {worst:.3e}"

    timings = _interleaved_best(
        {
            "reference": lambda: sweep(reference=True),
            "vectorized": lambda: sweep(reference=False),
        },
        rounds=3,
    )
    speedup = timings["reference"] / timings["vectorized"]
    assert speedup >= _FP_SPEEDUP_BAR, (
        f"NSFNet fixed-point sweep speedup {speedup:.2f}x "
        f"below the {_FP_SPEEDUP_BAR:g}x bar"
    )
    return {
        "workload": "NSFNet reduced-load fixed point, 20 load scales, cold caches",
        "reference_seconds": timings["reference"],
        "vectorized_seconds": timings["vectorized"],
        "speedup": speedup,
        "worst_relative_error": worst,
        "points": len(scales),
    }


def _simulator_bench(duration: float) -> dict:
    network = nsfnet_backbone()
    table = build_path_table(network)
    traffic = nsfnet_nominal_traffic()
    loads = primary_link_loads(network, table, traffic)
    policy = ControlledAlternateRouting(network, table, loads)
    trace = generate_trace(traffic, duration + 10.0, seed=42)

    fast = simulate(network, policy, trace, warmup=10.0)
    ref = simulate(network, policy, trace, warmup=10.0, backend="reference")
    for name in ("offered", "blocked", "primary_carried", "alternate_carried"):
        assert np.array_equal(getattr(fast, name), getattr(ref, name)), (
            f"simulator fast path diverged from reference on {name!r}"
        )

    timings = _interleaved_best(
        {
            "reference": lambda: simulate(
                network, policy, trace, warmup=10.0, backend="reference"
            ),
            "fast": lambda: simulate(network, policy, trace, warmup=10.0),
        },
        rounds=3,
    )
    speedup = timings["reference"] / timings["fast"]
    assert speedup >= _SIM_SPEEDUP_BAR, (
        f"simulator throughput speedup {speedup:.2f}x "
        f"below the {_SIM_SPEEDUP_BAR:g}x bar"
    )
    calls = len(trace.times)
    return {
        "workload": (
            "NSFNet nominal traffic, controlled alternate routing, "
            f"{duration:g} measured time units"
        ),
        "calls": calls,
        "reference_seconds": timings["reference"],
        "fast_seconds": timings["fast"],
        "reference_calls_per_sec": calls / timings["reference"],
        "fast_calls_per_sec": calls / timings["fast"],
        "speedup": speedup,
        "network_blocking": fast.network_blocking,
        "blocking_bit_identical": True,
    }


def _batch_bench(config) -> dict:
    scenario = Scenario()
    start = time.perf_counter()
    study = run_study(scenario, config=config)
    elapsed = time.perf_counter() - start
    calls = sum(r.total_offered for r in study.outcome.results)
    return {
        "workload": (
            "repro.api.run_study: NSFNet nominal, controlled policy, "
            f"{len(config.seeds)} seeds x {config.measured_duration:g} units"
        ),
        "seeds": len(config.seeds),
        "seconds": elapsed,
        "measured_calls": calls,
        "calls_per_sec": calls / elapsed,
        "network_blocking_mean": study.stat.mean,
    }


def test_perf_core(bench_config):
    document = {
        "schema": "repro-bench-perf-core-v1",
        "fidelity": {
            "seeds": len(bench_config.seeds),
            "measured_duration": bench_config.measured_duration,
            "speedup_scale": _SPEEDUP_SCALE,
        },
        "erlang_fixed_point": _fixed_point_bench(),
        "simulator": _simulator_bench(bench_config.measured_duration),
        "multi_seed_batch": _batch_bench(bench_config),
    }
    _OUTPUT.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print()
    fp = document["erlang_fixed_point"]
    sim = document["simulator"]
    batch = document["multi_seed_batch"]
    print(f"fixed point : {fp['speedup']:.1f}x  (worst rel err {fp['worst_relative_error']:.1e})")
    print(f"simulator   : {sim['speedup']:.2f}x  ({sim['fast_calls_per_sec']:,.0f} calls/sec)")
    print(f"batch       : {batch['calls_per_sec']:,.0f} calls/sec over {batch['seeds']} seeds")
    print(f"wrote {_OUTPUT}")
