"""EXT-GEN — the title claim: the control works on *general* meshes.

The paper evaluates two topologies; this bench sweeps three structurally
different synthetic meshes (torus, Waxman internetwork, dense random mesh)
under skewed gravity demand and checks the topology-free claims: the
guarantee (controlled never worse than single-path) holds on every mesh,
and controlled routing retains the uncontrolled scheme's gains wherever
those exist.
"""

from __future__ import annotations

from repro.experiments.generalization import general_mesh_comparison
from repro.experiments.report import format_table


def test_control_scheme_generalizes(benchmark, bench_config):
    outcome = benchmark.pedantic(
        general_mesh_comparison, args=(bench_config,), rounds=1, iterations=1
    )
    rows = [
        [name, stats["single-path"].mean, stats["uncontrolled"].mean,
         stats["controlled"].mean]
        for name, stats in outcome.items()
    ]
    print()
    print("General meshes, gravity traffic (regenerated):")
    print(format_table(["mesh", "single-path", "uncontrolled", "controlled"], rows))

    for name, stats in outcome.items():
        # The Theorem-1 guarantee, on every topology.
        assert stats["controlled"].mean <= stats["single-path"].mean + 0.01, name
    # Somewhere the alternate tier wins big, and controlled keeps the bulk.
    wins = {
        name: stats["single-path"].mean - stats["controlled"].mean
        for name, stats in outcome.items()
    }
    assert max(wins.values()) > 0.02
