"""BATCH-SIM — aggregate throughput of the lockstep many-seeds kernel.

One NSFNet replication study (controlled alternate routing, nominal
traffic, ``REPRO_BENCH_BATCH_SEEDS`` seeds — default 100) is run twice on
identical traces: once through :func:`repro.sim.batch.simulate_batch` (one
vectorized admission kernel advancing every seed per event epoch) and once
through the per-seed fast loop.  Per-seed blocking statistics are asserted
bit-identical before any speedup is reported, and a reference-loop spot
check pins the batch kernel to the original implementation as well.

**Hardware-aware speedup bar** (the ``BENCH_cluster_throughput.json``
precedent): the batch kernel trades one Python step per call for a fixed
per-*epoch* numpy overhead (~62 dispatch-equivalents, measured kernel
census) amortized over the seed width, ~62 array elements touched per call,
and a one-time pack cost per trace.  On wide machines with fast
interpreter-to-numpy ratios the epoch overhead amortizes away and the
kernel approaches the 10x target recorded in the JSON; on 1-2 vCPU shared
runners the un-amortizable costs alone can exceed one Python step and no
batching speedup is physically available.  The bar is therefore derived
from this machine's measured costs::

    batch_ns  = pack_ns + dispatch_ns * 62 / seeds + element_ns * 62
    predicted = fast_ns_per_call / batch_ns
    bar       = 0.5 * min(10, predicted) * REPRO_BENCH_SPEEDUP_SCALE

(the 0.5 margin absorbs cache effects the three-term model ignores).  The
committed ``BENCH_batch_sim.json`` records the probe, the bar and the 10x
target alongside the measured numbers, so a re-run on capable hardware is
directly comparable.  Fidelity knobs: ``REPRO_BENCH_DURATION``,
``REPRO_BENCH_BATCH_SEEDS``, ``REPRO_BENCH_SPEEDUP_SCALE``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.routing.alternate import ControlledAlternateRouting
from repro.sim.batch import simulate_batch
from repro.sim.simulator import simulate
from repro.sim.trace import generate_trace
from repro.topology.nsfnet import nsfnet_backbone
from repro.topology.paths import build_path_table
from repro.traffic.calibration import nsfnet_nominal_traffic
from repro.traffic.demand import primary_link_loads

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUTPUT = _REPO_ROOT / "BENCH_batch_sim.json"

_SPEEDUP_SCALE = float(os.environ.get("REPRO_BENCH_SPEEDUP_SCALE", "1.0"))
_BATCH_SEEDS = int(os.environ.get("REPRO_BENCH_BATCH_SEEDS", "100"))
_TARGET_SPEEDUP = 10.0  # the bar on batch-capable hardware
_DISPATCHES_PER_EPOCH = 62  # fixed epoch overhead, in dispatch-equivalents
_ELEMS_PER_CALL = 62  # array elements touched per simulated call
_BAR_MARGIN = 0.5  # model headroom for cache effects it does not see

_COUNTERS = ("offered", "blocked", "primary_carried", "alternate_carried")


def _probe_numpy_costs() -> tuple[float, float]:
    """Measured (dispatch_ns, element_ns) of numpy on this machine."""
    tiny = np.zeros(1, dtype=np.int32)
    big = np.zeros(4_000_000, dtype=np.int32)
    rounds = 3
    dispatch = element = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(2000):
            np.add(tiny, 1)
        dispatch = min(dispatch, (time.perf_counter() - start) / 2000)
        start = time.perf_counter()
        for _ in range(5):
            np.add(big, 1)
        element = min(element, (time.perf_counter() - start) / (5 * big.size))
    return dispatch * 1e9, element * 1e9


def _interleaved_best(funcs: dict, rounds: int) -> dict:
    best = {name: float("inf") for name in funcs}
    for _ in range(rounds):
        for name, func in funcs.items():
            start = time.perf_counter()
            func()
            best[name] = min(best[name], time.perf_counter() - start)
    return best


def _assert_bit_identical(a, b, label: str) -> None:
    for counter in _COUNTERS:
        assert np.array_equal(getattr(a, counter), getattr(b, counter)), (
            f"{label}: {counter} diverged between backends"
        )


def test_batch_sim(bench_config):
    network = nsfnet_backbone()
    table = build_path_table(network)
    traffic = nsfnet_nominal_traffic()
    loads = primary_link_loads(network, table, traffic)
    policy = ControlledAlternateRouting(network, table, loads)
    duration = bench_config.measured_duration + bench_config.warmup
    traces = [
        generate_trace(traffic, duration, seed) for seed in range(_BATCH_SEEDS)
    ]
    warmup = bench_config.warmup

    # Correctness first: batch == fast for every seed, == reference spot-check.
    # The construction is timed separately — the pack phase (per-seed epoch
    # mapping + departure sort) is the un-amortizable per-call cost the
    # speedup model needs.
    from repro.sim.batch import BatchSimulator

    start = time.perf_counter()
    batch_sim = BatchSimulator(network, policy, traces, warmup)
    pack_seconds = time.perf_counter() - start
    batch_results = batch_sim.run()
    fast_results = [
        simulate(network, policy, trace, warmup, backend="fast")
        for trace in traces
    ]
    for trace, res_b, res_f in zip(traces, batch_results, fast_results):
        _assert_bit_identical(res_b, res_f, f"seed {trace.seed}")
    for trace in traces[:2]:
        ref = simulate(network, policy, trace, warmup, backend="reference")
        _assert_bit_identical(batch_results[trace.seed], ref,
                              f"seed {trace.seed} (reference)")

    timings = _interleaved_best(
        {
            "batch": lambda: simulate_batch(network, policy, traces, warmup),
            "fast": lambda: [
                simulate(network, policy, trace, warmup, backend="fast")
                for trace in traces
            ],
        },
        rounds=2,
    )
    calls = sum(len(trace.times) for trace in traces)
    speedup = timings["fast"] / timings["batch"]
    fast_ns_per_call = timings["fast"] / calls * 1e9

    dispatch_ns, element_ns = _probe_numpy_costs()
    pack_ns_per_call = pack_seconds / calls * 1e9
    batch_ns_predicted = (
        pack_ns_per_call
        + dispatch_ns * _DISPATCHES_PER_EPOCH / len(traces)
        + element_ns * _ELEMS_PER_CALL
    )
    predicted_speedup = fast_ns_per_call / batch_ns_predicted
    speedup_bar = (
        _BAR_MARGIN * min(_TARGET_SPEEDUP, predicted_speedup) * _SPEEDUP_SCALE
    )
    if speedup_bar > 0:
        assert speedup >= speedup_bar, (
            f"batch kernel speedup {speedup:.2f}x below the hardware-aware "
            f"{speedup_bar:.2f}x bar (predicted {predicted_speedup:.2f}x, "
            f"target {_TARGET_SPEEDUP:g}x)"
        )

    # Width scaling: aggregate calls/sec as the seed dimension grows.
    widths = sorted({
        w for w in (10, 25, 50, len(traces)) if 2 <= w <= len(traces)
    })
    scaling = []
    for width in widths:
        subset = traces[:width]
        start = time.perf_counter()
        simulate_batch(network, policy, subset, warmup)
        elapsed = time.perf_counter() - start
        subset_calls = sum(len(trace.times) for trace in subset)
        scaling.append({
            "seeds": width,
            "seconds": elapsed,
            "aggregate_calls_per_sec": subset_calls / elapsed,
        })

    document = {
        "schema": "repro-bench-batch-sim-v1",
        "workload": (
            "NSFNet nominal traffic, controlled alternate routing, "
            f"{len(traces)} seeds x {bench_config.measured_duration:g} "
            "measured time units, common random numbers"
        ),
        "fidelity": {
            "seeds": len(traces),
            "measured_duration": bench_config.measured_duration,
            "cpu_count": os.cpu_count() or 1,
            "speedup_scale": _SPEEDUP_SCALE,
            "speedup_bar": speedup_bar,
            "target_speedup": _TARGET_SPEEDUP,
        },
        "hardware_probe": {
            "numpy_dispatch_ns": dispatch_ns,
            "numpy_element_ns": element_ns,
            "pack_ns_per_call": pack_ns_per_call,
            "fast_ns_per_call": fast_ns_per_call,
            "predicted_speedup": predicted_speedup,
            "bar_margin": _BAR_MARGIN,
        },
        "batch": {
            "calls": calls,
            "batch_seconds": timings["batch"],
            "fast_seconds": timings["fast"],
            "aggregate_calls_per_sec": calls / timings["batch"],
            "fast_calls_per_sec": calls / timings["fast"],
            "speedup": speedup,
            "blocking_bit_identical": True,
        },
        "width_scaling": scaling,
    }
    _OUTPUT.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print()
    print(
        f"batch kernel: {calls / timings['batch']:,.0f} calls/sec aggregate "
        f"over {len(traces)} seeds ({speedup:.2f}x vs per-seed fast loop)"
    )
    print(
        f"bar {speedup_bar:.2f}x (predicted {predicted_speedup:.2f}x on this "
        f"hardware, target {_TARGET_SPEEDUP:g}x)"
    )
    for row in scaling:
        print(
            f"  {row['seeds']:>4} seeds: "
            f"{row['aggregate_calls_per_sec']:,.0f} calls/sec"
        )
    print(f"wrote {_OUTPUT}")
