"""FIG6 — Figure 6: NSFNet blocking vs load, unlimited alternates (H = 11).

Paper's shape around the nominal load (=10): single-path poor at moderate
loads but approaching the Erlang bound beyond; uncontrolled excellent below
nominal but worse than single-path above it; controlled improves on both at
moderate loads and never does worse than single-path.
"""

from __future__ import annotations

from repro.experiments.figures import nsfnet_sweep
from repro.experiments.report import format_sweep


def test_fig6_nsfnet_blocking_sweep(benchmark, bench_config):
    load_values = (8.0, 9.0, 10.0, 11.0, 12.0, 14.0)
    points = benchmark.pedantic(
        nsfnet_sweep,
        kwargs={"load_values": load_values, "config": bench_config},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_sweep(points, "Figure 6 (regenerated): NSFNet, H=11, blocking vs load (nominal=10)"))

    by_load = {p.load: p.blocking for p in points}
    # Below nominal, alternate routing beats single-path.
    assert by_load[8.0]["uncontrolled"].mean < by_load[8.0]["single-path"].mean
    assert by_load[9.0]["controlled"].mean < by_load[9.0]["single-path"].mean
    # Above nominal, uncontrolled crosses over and does worse than
    # single-path (the crossover sits near load 12; assert it firmly at 14).
    assert by_load[12.0]["uncontrolled"].mean > by_load[12.0]["single-path"].mean - 0.01
    assert by_load[14.0]["uncontrolled"].mean > by_load[14.0]["single-path"].mean
    # Controlled never (statistically) worse than single-path.
    for point in points:
        assert point.blocking["controlled"].mean <= point.blocking["single-path"].mean + 0.01
    # Blocking grows with load for every scheme.
    for scheme in ("single-path", "controlled"):
        series = [by_load[l][scheme].mean for l in load_values]
        assert series[-1] > series[0]
