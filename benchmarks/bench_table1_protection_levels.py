"""TAB1 — Table 1: NSFNet capacities, primary loads and protection levels.

Regenerated end to end: NSFNet topology -> calibrated nominal traffic ->
Equation-1 link loads -> Equation-15 protection levels for H = 6 and H = 11.
Every printed load matches the paper exactly; protection levels match on
26/30 rows, the rest off by <= 2 because the paper's printed Lambda column
is integer-rounded (the sensitive rows sit on the steep part of Figure 2).
"""

from __future__ import annotations

from repro.experiments.report import format_table1
from repro.experiments.tables import regenerate_table1, table1_agreement


def test_table1_regeneration(benchmark):
    rows = benchmark(regenerate_table1)
    print()
    print("Table 1 (regenerated):")
    print(format_table1(rows))
    summary = table1_agreement(rows)
    print(
        f"agreement: loads {summary['load_match_fraction']:.0%}, "
        f"protection {summary['protection_match_fraction']:.0%}, "
        f"worst gap {summary['worst_protection_gap']:.0f}"
    )

    assert summary["rows"] == 30
    assert summary["load_match_fraction"] == 1.0
    assert summary["protection_match_fraction"] >= 0.85
    assert summary["worst_protection_gap"] <= 2
    # The structurally overloaded links are fully protected, as printed.
    overloaded = {(8, 10), (10, 11), (11, 10)}
    for row in rows:
        if row.link in overloaded:
            assert row.r_h6 == 100
            assert row.r_h11 == 100
        assert row.r_h11 >= row.r_h6
