"""FIG3 — Figure 3: blocking vs offered load, fully-connected quadrangle.

Paper's shape: uncontrolled alternate routing performs well up to ~85
Erlangs per pair then degrades badly; single-path routing is poor below ~90
Erlangs and then stays low; the controlled scheme sticks with the better of
the two and beats both in the 85-95 Erlang window, never doing worse than
single-path.
"""

from __future__ import annotations

from repro.experiments.figures import quadrangle_sweep
from repro.experiments.report import format_sweep


def test_fig3_quadrangle_blocking_sweep(benchmark, bench_config):
    loads = (70.0, 80.0, 85.0, 90.0, 95.0, 100.0, 110.0)
    points = benchmark.pedantic(
        quadrangle_sweep,
        kwargs={"loads": loads, "config": bench_config},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_sweep(points, "Figure 3 (regenerated): quadrangle blocking vs per-pair Erlangs"))

    by_load = {p.load: p.blocking for p in points}
    # Low load: uncontrolled (and controlled) beat single-path.
    assert by_load[80.0]["uncontrolled"].mean < by_load[80.0]["single-path"].mean
    assert by_load[80.0]["controlled"].mean < by_load[80.0]["single-path"].mean
    # Overload: uncontrolled collapses past single-path; controlled does not.
    assert by_load[100.0]["uncontrolled"].mean > by_load[100.0]["single-path"].mean
    assert by_load[110.0]["uncontrolled"].mean > by_load[110.0]["single-path"].mean
    # Controlled never (statistically) worse than single-path anywhere.
    for point in points:
        assert point.blocking["controlled"].mean <= point.blocking["single-path"].mean + 0.01
    # Crossover window: controlled at least matches both competitors.
    for load in (85.0, 90.0, 95.0):
        ctl = by_load[load]["controlled"].mean
        assert ctl <= by_load[load]["single-path"].mean + 0.005
        assert ctl <= by_load[load]["uncontrolled"].mean + 0.005
    # Everything respects the Erlang lower bound (loose, so allow slack).
    for point in points:
        assert point.erlang_bound is not None
        for stat in point.blocking.values():
            assert stat.mean >= point.erlang_bound - 0.02
