"""Microbenchmarks of the performance-critical primitives.

Not a paper artifact — these keep the library honest about the costs that
gate experiment wall-clock time: the Erlang recursion, protection-level
search, path-table construction, trace generation, and raw simulator
throughput (calls routed per second).
"""

from __future__ import annotations

from repro.core.erlang import erlang_b
from repro.core.protection import min_protection_level
from repro.routing.alternate import ControlledAlternateRouting
from repro.sim.simulator import simulate
from repro.sim.trace import generate_trace
from repro.topology.nsfnet import nsfnet_backbone
from repro.topology.paths import build_path_table
from repro.traffic.calibration import nsfnet_nominal_traffic
from repro.traffic.demand import primary_link_loads


def test_erlang_b_speed(benchmark):
    result = benchmark(erlang_b, 80.0, 100)
    assert 0.0 < result < 1.0


def test_protection_level_speed(benchmark):
    result = benchmark(min_protection_level, 81.0, 100, 6)
    assert result == 11


def test_path_table_construction_speed(benchmark):
    network = nsfnet_backbone()
    table = benchmark(build_path_table, network)
    assert len(table.primary) == 132


def test_trace_generation_speed(benchmark):
    traffic = nsfnet_nominal_traffic()
    trace = benchmark(generate_trace, traffic, 110.0, 0)
    assert trace.num_calls > 50_000


def test_simulator_throughput(benchmark):
    network = nsfnet_backbone()
    table = build_path_table(network)
    traffic = nsfnet_nominal_traffic()
    loads = primary_link_loads(network, table, traffic)
    policy = ControlledAlternateRouting(network, table, loads)
    trace = generate_trace(traffic, 60.0, 0)

    result = benchmark(simulate, network, policy, trace, 10.0)
    calls_per_second = trace.num_calls / benchmark.stats.stats.mean
    benchmark.extra_info["calls_per_second"] = calls_per_second
    assert result.total_offered > 0
    assert calls_per_second > 50_000  # sanity floor for the hot loop
