"""EXT-SIG — what the atomic-admission abstraction hides.

The paper's evaluation (like ours) simulates admission as an instantaneous
decision, while its Section-1 protocol separates *checking* (set-up flying
forward) from *booking* (confirm walking back).  This bench runs the actual
message-level protocol and sweeps the per-hop propagation delay, measuring
when the abstraction is safe: at realistic delays (10 ms hops vs minutes-
long calls, ~1e-4 holding times) blocking is indistinguishable from the
atomic model and race aborts are rare; only at absurd delays do stale
checks visibly degrade admission.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import format_table
from repro.routing.alternate import ControlledAlternateRouting
from repro.sim.signaling import simulate_signaling
from repro.sim.simulator import simulate
from repro.sim.trace import generate_trace
from repro.topology.generators import quadrangle
from repro.topology.paths import build_path_table
from repro.traffic.demand import primary_link_loads
from repro.traffic.generators import uniform_traffic

DELAYS = (0.0, 1e-4, 1e-3, 1e-2)


def run(config):
    network = quadrangle(100)
    table = build_path_table(network)
    traffic = uniform_traffic(4, 95.0)
    loads = primary_link_loads(network, table, traffic)
    policy = ControlledAlternateRouting(network, table, loads)

    atomic = []
    rows = {delay: {"blocking": [], "aborts": [], "latency": []} for delay in DELAYS}
    for seed in config.seeds:
        trace = generate_trace(traffic, config.duration, seed)
        atomic.append(simulate(network, policy, trace, config.warmup).network_blocking)
        for delay in DELAYS:
            result, stats = simulate_signaling(
                network, policy, trace, config.warmup, propagation_delay=delay
            )
            rows[delay]["blocking"].append(result.network_blocking)
            rows[delay]["aborts"].append(stats.race_aborts)
            rows[delay]["latency"].append(stats.mean_setup_latency)
    return float(np.mean(atomic)), {
        delay: {key: float(np.mean(vals)) for key, vals in data.items()}
        for delay, data in rows.items()
    }


def test_signaling_delay_effects(benchmark, bench_config):
    atomic, by_delay = benchmark.pedantic(run, args=(bench_config,), rounds=1, iterations=1)
    table = [["atomic (flow sim)", atomic, "", ""]] + [
        [f"delay {delay:g}", data["blocking"], data["aborts"], data["latency"]]
        for delay, data in by_delay.items()
    ]
    print()
    print("Message-level signaling, quadrangle 95 E (regenerated):")
    print(format_table(["model", "blocking", "race aborts", "setup latency"], table))

    # Zero delay reproduces the atomic model exactly (pathwise, so exactly).
    assert by_delay[0.0]["blocking"] == atomic
    assert by_delay[0.0]["aborts"] == 0
    # At the realistic delay (1e-4 holding times) the abstraction is safe.
    assert abs(by_delay[1e-4]["blocking"] - atomic) < 0.01
    # Grossly inflated delay degrades admission (stale checks, race aborts).
    assert by_delay[1e-2]["aborts"] > by_delay[1e-4]["aborts"]
    assert by_delay[1e-2]["blocking"] >= atomic - 0.005
    # Latency grows with delay.
    assert by_delay[1e-2]["latency"] > by_delay[1e-3]["latency"] > 0.0
