"""EXT-FPGEN — analytic companion: two-tier reduced-load vs simulation.

Validates the general-mesh alternate-routing fixed point of
``analysis/alternate_fixed_point.py`` against call-by-call simulation on
both paper networks, at the controlled scheme's operating points.  The
mean-field uncontrolled prediction is reported too — it lands on the
high-blocking branch past the critical load, which finite simulations only
approach asymptotically (the bistability story, in general-mesh dress).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.alternate_fixed_point import alternate_routing_fixed_point
from repro.experiments.report import format_table
from repro.routing.alternate import ControlledAlternateRouting
from repro.sim.simulator import simulate
from repro.sim.trace import generate_trace
from repro.topology.generators import quadrangle
from repro.topology.nsfnet import nsfnet_backbone
from repro.topology.paths import build_path_table
from repro.traffic.calibration import nsfnet_nominal_traffic
from repro.traffic.demand import primary_link_loads
from repro.traffic.generators import uniform_traffic


def run(config):
    cases = []
    quad = quadrangle(100)
    quad_table = build_path_table(quad)
    for per_pair in (90.0, 100.0):
        cases.append(
            ("quadrangle", per_pair, quad, quad_table, uniform_traffic(4, per_pair))
        )
    nsf = nsfnet_backbone()
    nsf_table = build_path_table(nsf)
    nominal = nsfnet_nominal_traffic()
    for load in (10.0, 12.0):
        cases.append(("nsfnet", load, nsf, nsf_table, nominal.scaled(load / 10.0)))

    rows = []
    for name, load, network, table, traffic in cases:
        loads = primary_link_loads(network, table, traffic)
        policy = ControlledAlternateRouting(network, table, loads)
        fp = alternate_routing_fixed_point(
            network, table, traffic, policy.protection_levels
        )
        sims = [
            simulate(
                network, policy, generate_trace(traffic, config.duration, seed),
                config.warmup,
            ).network_blocking
            for seed in config.seeds
        ]
        rows.append((name, load, fp.network_blocking, float(np.mean(sims)), fp.converged))
    return rows


def test_two_tier_fixed_point_validates(benchmark, bench_config):
    rows = benchmark.pedantic(run, args=(bench_config,), rounds=1, iterations=1)
    print()
    print("Two-tier reduced-load fixed point vs simulation (controlled scheme):")
    print(
        format_table(
            ["network", "load", "fixed point", "simulation", "converged"],
            [[n, l, fp, sim, str(c)] for n, l, fp, sim, c in rows],
        )
    )
    for name, load, fp, sim, converged in rows:
        assert converged
        # Agreement within reduced-load accuracy wherever blocking is
        # resolvable at this fidelity.
        if sim > 0.01:
            assert fp == pytest.approx(sim, rel=0.5)

