"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures (or an
ablation) and prints the regenerated rows/series, then asserts the paper's
qualitative shape.  Fidelity is tunable through environment variables so the
same harness serves quick CI runs and full paper-fidelity regeneration:

* ``REPRO_BENCH_SEEDS``    — replications per point (default 3; paper: 10)
* ``REPRO_BENCH_DURATION`` — measured time units per run (default 40; paper: 100)

Example full-fidelity run::

    REPRO_BENCH_SEEDS=10 REPRO_BENCH_DURATION=100 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import ReplicationConfig


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return default if value is None else int(value)


def _env_float(name: str, default: float) -> float:
    value = os.environ.get(name)
    return default if value is None else float(value)


@pytest.fixture(scope="session")
def bench_config() -> ReplicationConfig:
    return ReplicationConfig(
        measured_duration=_env_float("REPRO_BENCH_DURATION", 40.0),
        warmup=10.0,
        seeds=tuple(range(_env_int("REPRO_BENCH_SEEDS", 3))),
    )
